//! Ablations of the design choices the paper calls out.
//!
//! 1. **Control-traffic share** — §4.1 assumes control traffic is
//!    "negligible compared to the data-plane traffic … such that the
//!    aggregation step does not become a performance bottleneck";
//!    sweeping the control share quantifies when that holds.
//! 2. **NAT table sizing** — Table 1's footnote claims "promising
//!    potential for larger tables"; sweep capacity vs LSRAM budget.
//! 3. **Chain depth** — §5.3's "keeping chains compact (about 3–4
//!    stages)" for 2× clock closure; sweep depth vs f_max.
//! 4. **FIFO sizing** — how much buffering rescues an overloaded
//!    Two-Way-Core at 1× clock (it cannot: the deficit is sustained).

use flexsfp_core::auth::AuthKey;
use flexsfp_core::control::{ControlPlane, ControlRequest};
use flexsfp_core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp_core::ShellKind;
use flexsfp_fabric::sram::{MemoryPlanner, TableShape};
use flexsfp_fabric::{ClockDomain, Device};
use flexsfp_ppe::engine::PassThrough;
use flexsfp_ppe::Direction;
use flexsfp_traffic::{SizeModel, TraceBuilder};
use flexsfp_wire::builder::PacketBuilder;

/// Control-share sweep point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ControlSharePoint {
    /// Fraction of offered frames that are control traffic.
    pub share: f64,
    /// Dataplane delivery ratio.
    pub data_delivery: f64,
    /// Control requests answered.
    pub control_handled: u64,
}

flexsfp_obs::impl_json_struct!(ControlSharePoint {
    share,
    data_delivery,
    control_handled
});

/// NAT table-size sweep point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TableSizePoint {
    /// Flow capacity.
    pub capacity: usize,
    /// LSRAM blocks consumed.
    pub lsram_blocks: u64,
    /// Fraction of the device's LSRAM.
    pub lsram_share: f64,
    /// Whole design still fits.
    pub fits: bool,
}

flexsfp_obs::impl_json_struct!(TableSizePoint {
    capacity,
    lsram_blocks,
    lsram_share,
    fits
});

/// Chain-depth sweep point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChainDepthPoint {
    /// Stages in the chain.
    pub depth: usize,
    /// Achievable clock, MHz.
    pub fmax_mhz: f64,
    /// Closes at 156.25 MHz.
    pub closes_1x: bool,
    /// Closes at 312.5 MHz.
    pub closes_2x: bool,
}

flexsfp_obs::impl_json_struct!(ChainDepthPoint {
    depth,
    fmax_mhz,
    closes_1x,
    closes_2x
});

/// FIFO sweep point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FifoPoint {
    /// FIFO capacity, KiB.
    pub fifo_kib: usize,
    /// Delivery of an overloaded Two-Way-Core at 1×.
    pub delivery: f64,
}

flexsfp_obs::impl_json_struct!(FifoPoint { fifo_kib, delivery });

/// The combined report.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Ablation 1.
    pub control_share: Vec<ControlSharePoint>,
    /// Ablation 2.
    pub table_size: Vec<TableSizePoint>,
    /// Ablation 3.
    pub chain_depth: Vec<ChainDepthPoint>,
    /// Ablation 4.
    pub fifo: Vec<FifoPoint>,
}

flexsfp_obs::impl_json_struct!(Report {
    control_share,
    table_size,
    chain_depth,
    fifo
});

fn control_share_sweep(n: usize) -> Vec<ControlSharePoint> {
    crate::par::par_map(vec![0.0, 0.01, 0.05, 0.10, 0.20], |share| {
        let mut module = FlexSfp::passthrough();
        let mgmt_mac = module.config.mgmt_mac;
        let mgmt_ip = module.config.mgmt_ip;
        let data = TraceBuilder::new(0xab)
            .sizes(SizeModel::Fixed(60))
            .arrivals(flexsfp_traffic::gen::ArrivalModel::Paced { utilization: 1.0 })
            .build(n);
        let every = if share == 0.0 {
            usize::MAX
        } else {
            (1.0 / share) as usize
        };
        let mut packets: Vec<SimPacket> = Vec::with_capacity(n);
        let mut data_count = 0u64;
        for (i, p) in data.into_iter().enumerate() {
            if i % every == every - 1 {
                // Replace with a control ping at the same slot.
                let payload = ControlPlane::encode_request(
                    &AuthKey::DEFAULT,
                    &ControlRequest::Ping { nonce: i as u64 },
                );
                packets.push(SimPacket {
                    arrival_ns: p.arrival_ns,
                    direction: Direction::EdgeToOptical,
                    frame: PacketBuilder::eth_ipv4_udp(
                        mgmt_mac,
                        flexsfp_wire::MacAddr([0xee; 6]),
                        0x0a000101,
                        mgmt_ip,
                        40_000,
                        flexsfp_core::control::CONTROL_PORT,
                        &payload,
                    ),
                });
            } else {
                data_count += 1;
                packets.push(SimPacket {
                    arrival_ns: p.arrival_ns,
                    direction: Direction::EdgeToOptical,
                    frame: p.frame,
                });
            }
        }
        let report = module.run(packets);
        let delivered = report.forwarded.0 + report.forwarded.1;
        ControlSharePoint {
            share,
            data_delivery: if data_count == 0 {
                1.0
            } else {
                delivered as f64 / data_count as f64
            },
            control_handled: report.control_handled,
        }
    })
}

fn table_size_sweep() -> Vec<TableSizePoint> {
    let device = Device::mpf200t();
    [1_024usize, 4_096, 16_384, 32_768, 65_536, 131_072]
        .into_iter()
        .map(|capacity| {
            let placement = MemoryPlanner::place(TableShape::new(capacity as u64, 96));
            let lsram = match placement.kind {
                flexsfp_fabric::sram::MemoryKind::Lsram => placement.blocks,
                flexsfp_fabric::sram::MemoryKind::Usram => 0,
            };
            // Other design components consume 4 LSRAM (Mi-V) + rest.
            let total_lsram = lsram + 4;
            TableSizePoint {
                capacity,
                lsram_blocks: lsram,
                lsram_share: lsram as f64 / device.capacity.lsram as f64,
                fits: total_lsram <= device.capacity.lsram,
            }
        })
        .collect()
}

fn chain_depth_sweep() -> Vec<ChainDepthPoint> {
    use flexsfp_ppe::action::Action;
    use flexsfp_ppe::hls::synthesize_pipeline;
    use flexsfp_ppe::pipeline::{KeySelector, Matcher, ParamAction, PipelineBuilder, Stage};
    use flexsfp_ppe::tables::HashTable;
    (1..=6)
        .map(|depth| {
            let mut b = PipelineBuilder::new("chain");
            for i in 0..depth {
                b = b.stage(Stage {
                    name: format!("s{i}"),
                    matcher: Matcher::Exact {
                        selector: KeySelector::FiveTuple,
                        table: HashTable::with_capacity(1024),
                    },
                    param_action: ParamAction::None,
                    on_hit: vec![Action::Count(0)],
                    on_miss: vec![],
                    hits: 0,
                    misses: 0,
                });
            }
            let rep = synthesize_pipeline(&b.build());
            ChainDepthPoint {
                depth,
                fmax_mhz: rep.fmax_hz as f64 / 1e6,
                closes_1x: rep.meets_timing(ClockDomain::XGMII_10G.hz()),
                closes_2x: rep.meets_timing(ClockDomain::XGMII_10G_X2.hz()),
            }
        })
        .collect()
}

fn fifo_sweep(n: usize) -> Vec<FifoPoint> {
    crate::par::par_map(vec![16usize, 64, 256, 1024], |kib| {
        let mut module = FlexSfp::new(
            ModuleConfig {
                shell: ShellKind::TwoWayCore,
                ppe_clock: ClockDomain::XGMII_10G,
                fifo_bytes: kib * 1024,
                ..Default::default()
            },
            Box::new(PassThrough),
        );
        let base = TraceBuilder::new(0xcd)
            .sizes(SizeModel::Fixed(60))
            .arrivals(flexsfp_traffic::gen::ArrivalModel::Paced { utilization: 1.0 })
            .build(n);
        let mut packets = Vec::with_capacity(2 * n);
        for p in base {
            packets.push(SimPacket {
                arrival_ns: p.arrival_ns,
                direction: Direction::EdgeToOptical,
                frame: p.frame.clone(),
            });
            packets.push(SimPacket {
                arrival_ns: p.arrival_ns,
                direction: Direction::OpticalToEdge,
                frame: p.frame,
            });
        }
        let report = module.run(packets);
        FifoPoint {
            fifo_kib: kib,
            delivery: report.delivery_ratio(),
        }
    })
}

/// Run all ablations (`n` packets for the traffic-driven ones).
pub fn run(n: usize) -> Report {
    Report {
        control_share: control_share_sweep(n),
        table_size: table_size_sweep(),
        chain_depth: chain_depth_sweep(),
        fifo: fifo_sweep(n),
    }
}

/// Render all four ablations.
pub fn render(r: &Report) -> String {
    let mut out = String::new();
    out.push_str("Ablation 1: control-traffic share vs dataplane delivery (One-Way-Filter)\n");
    out.push_str(&crate::render::table(
        &["Share", "Data delivery", "Control handled"],
        &r.control_share
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.share * 100.0),
                    format!("{:.4}", p.data_delivery),
                    p.control_handled.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str("\nAblation 2: NAT table capacity vs LSRAM budget (616 blocks)\n");
    out.push_str(&crate::render::table(
        &["Flows", "LSRAM blocks", "Share", "Fits"],
        &r.table_size
            .iter()
            .map(|p| {
                vec![
                    p.capacity.to_string(),
                    p.lsram_blocks.to_string(),
                    format!("{:.0}%", p.lsram_share * 100.0),
                    p.fits.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str("\nAblation 3: chain depth vs achievable clock\n");
    out.push_str(&crate::render::table(
        &["Stages", "fmax MHz", "Closes 156.25", "Closes 312.5"],
        &r.chain_depth
            .iter()
            .map(|p| {
                vec![
                    p.depth.to_string(),
                    format!("{:.0}", p.fmax_mhz),
                    p.closes_1x.to_string(),
                    p.closes_2x.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str("\nAblation 4: FIFO size vs overloaded Two-Way-Core delivery (1x clock)\n");
    out.push_str(&crate::render::table(
        &["FIFO KiB", "Delivery"],
        &r.fifo
            .iter()
            .map(|p| vec![p.fifo_kib.to_string(), format!("{:.4}", p.delivery)])
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_share_negligible_impact() {
        let r = run(2_000);
        // The §4.1 assumption: even at 20% control share, dataplane
        // delivery of the One-Way-Filter is unaffected (control frames
        // divert before the PPE).
        for p in &r.control_share {
            assert!(p.data_delivery >= 0.999, "{p:?}");
        }
        // And control frames actually got answered.
        assert!(r.control_share.last().unwrap().control_handled > 0);
        assert_eq!(r.control_share[0].control_handled, 0);
    }

    #[test]
    fn table_scaling_headroom() {
        let r = run(100);
        let at = |cap: usize| r.table_size.iter().find(|p| p.capacity == cap).unwrap();
        // The prototype's 32k table: 160 blocks ≈ 26%.
        assert_eq!(at(32_768).lsram_blocks, 160);
        assert!(at(32_768).fits);
        // A 2× larger table still fits — "promising potential for
        // larger tables" — but 4× (128k flows, 640 blocks) exceeds the
        // 616-block budget: the ceiling is ~2×.
        assert!(at(65_536).fits);
        assert!(!at(131_072).fits);
        assert!(at(131_072).lsram_share > 1.0);
    }

    #[test]
    fn chain_depth_claim() {
        let r = run(100);
        let closes_2x: Vec<bool> = r.chain_depth.iter().map(|p| p.closes_2x).collect();
        // 1–4 stages close at 2×; 5–6 do not — "about 3–4 stages".
        assert_eq!(closes_2x, vec![true, true, true, true, false, false]);
        // All depths close at 1×.
        assert!(r.chain_depth.iter().all(|p| p.closes_1x));
        // fmax decreases monotonically with depth.
        for w in r.chain_depth.windows(2) {
            assert!(w[1].fmax_mhz < w[0].fmax_mhz);
        }
    }

    #[test]
    fn fifo_cannot_rescue_sustained_overload() {
        // Sustained 2× packet-rate overload: the PPE serves a 64 B
        // frame in 8 beats × 6.4 ns = 51.2 ns while the wire delivers
        // one per 67.2 ns per direction, so the steady-state delivery
        // floor is 67.2 / 102.4 ≈ 0.656. Buffering only absorbs a
        // transient proportional to FIFO size; it cannot lift the floor.
        // 30 k packets/direction ≈ 2 ms of line-rate 64 B traffic.
        let r = run(30_000);
        let deliveries: Vec<f64> = r.fifo.iter().map(|p| p.delivery).collect();
        // Small FIFOs sit at the sustained floor.
        assert!((0.64..0.68).contains(&deliveries[0]), "{deliveries:?}");
        assert!(deliveries[1] < 0.70, "{deliveries:?}");
        // Bigger FIFOs absorb more transient but never reach 1.0.
        for w in deliveries.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{deliveries:?}");
        }
        assert!(*deliveries.last().unwrap() < 0.97, "{deliveries:?}");
    }

    #[test]
    fn render_sections() {
        let text = render(&run(500));
        for s in ["Ablation 1", "Ablation 2", "Ablation 3", "Ablation 4"] {
            assert!(text.contains(s));
        }
    }
}
