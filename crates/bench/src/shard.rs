//! The sharded multicore dataplane: one simulation spread across every
//! core, digest-identical to the serial path.
//!
//! `run_stream` drives one [`FlexSfp`] on one thread — ~11 Mpps on the
//! committed baseline, and the ceiling for every rack- and city-scale
//! experiment built on top of it. This module splits a single workload
//! across N per-core module instances the way an RSS-capable NIC
//! splits a line into queues:
//!
//! 1. **Dispatch** — the dispatcher thread shallow-parses each frame
//!    (Ethernet → optional VLAN tag → IPv4/IPv6 → TCP/UDP ports) and
//!    hashes the 5-tuple with the fabric CRC-32 ([`shard_for`]), so
//!    every flow lands on exactly one shard. Non-IP frames hash their
//!    MAC pair. Frames the control plane would claim are *broadcast*
//!    to all shards instead (see below).
//! 2. **Per-shard modules** — each worker core owns a full [`FlexSfp`]
//!    (its own flow cache, PPE server model, flight recorder,
//!    windowed telemetry), fed over a bounded SPSC ring
//!    ([`flexsfp_fabric::ring`]) in chunks that amortize the ring
//!    protocol. Workers drive a [`StreamSession`], tagging every
//!    output with the global input sequence number of the packet that
//!    produced it.
//! 3. **Reconcile** — a min-heap on the global sequence number merges
//!    the shard output streams back into exactly the serial sink
//!    order. Watermarks make the merge safe and bounded: at a
//!    per-transport cadence ([`BARRIER_EVERY`] threaded,
//!    [`INLINE_BARRIER_EVERY`] inline) the dispatcher broadcasts a
//!    flush barrier; a shard that has flushed everything up to
//!    sequence `s` says so, and the heap releases outputs only below
//!    the minimum watermark across shards.
//!
//! # Why the digest cannot change
//!
//! Serial `run_stream_with` emits outputs in global input order (the
//! batched pipeline drains in admission order, and every out-of-band
//! path — control, microservice, bypass — flushes the batch before
//! emitting). The reconciler reproduces exactly that order from the
//! tags. The *contents* of each output match because every §3
//! application keys its dataplane state by flow or by source, and the
//! dispatch hash maps each flow to exactly one shard; control-plane
//! mutations (table writes, reboots) are broadcast to every shard in
//! stream position, so all shards make the same state transitions the
//! serial module makes. Departure *times* match because the PPE
//! queueing model is work-conserving and the offered loads of the
//! golden workloads never backlog the server (utilization ≤ 1), so a
//! packet's departure depends only on its own arrival and length —
//! not on queue-mates that may now live on other shards. The digest
//! parity suite (`stream_parity`) pins all of this for all 11 apps at
//! 1/2/4/8 shards.
//!
//! Control frames are answered by shard 0 only (the *primary*);
//! replicas apply the mutation but suppress the duplicate response.
//! The merged [`SimReport`] therefore takes `control_handled` from the
//! primary, input accounting from the dispatcher (broadcasts would
//! double-count), and sums or max-merges everything else; latency
//! histograms merge exactly.

use crate::par;
use flexsfp_core::module::OutputPacket;
use flexsfp_core::{ControlPlane, FlexSfp, ModuleConfig, SimPacket, SimReport, StreamSession};
use flexsfp_fabric::hash::crc32;
use flexsfp_fabric::ring::{channel, Consumer, Producer};
use flexsfp_obs::TelemetrySnapshot;
use flexsfp_wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, Ipv6Packet, VlanFrame};
use std::collections::BinaryHeap;

/// Dispatcher-to-shard ring capacity, in message chunks.
pub const RING_CHUNKS: usize = 64;
/// Messages per ring chunk: one slot-mutex handoff per `CHUNK`
/// packets instead of per packet.
pub const CHUNK: usize = 64;
/// Global-sequence distance between flush barriers on the threaded
/// transport. Bounds reconciler heap growth to roughly one barrier
/// interval plus the in-flight ring contents, and bounds how long a
/// shard may sit on a partial batch.
pub const BARRIER_EVERY: u64 = 4096;
/// Barrier distance on the inline transport. Inline, a barrier is two
/// function calls — no ring round-trip to amortize — and the interval
/// directly sets the reconciler's resident window, i.e. how many
/// output frames stay live before the sink can recycle them. A tight
/// cadence keeps that working set L1-sized instead of cycling a
/// 4096-frame window through the arena. Must stay comfortably above
/// the PPE batch size so batching still amortizes.
pub const INLINE_BARRIER_EVERY: u64 = 256;

/// Shallow-parse `frame` and pick its shard among `shards` by flow
/// hash: CRC-32 (the fabric hash primitive) over the packed
/// src/dst/proto/ports 5-tuple for IPv4, src/dst/next-header/ports for
/// IPv6 (one VLAN tag is skipped), and over the MAC pair for anything
/// else. Every packet of a flow — and every non-flow frame between the
/// same two stations — lands on the same shard.
pub fn shard_for(frame: &[u8], shards: usize) -> usize {
    (flow_hash(frame) as usize) % shards.max(1)
}

fn flow_hash(frame: &[u8]) -> u32 {
    let mac_hash = |f: &[u8]| crc32(f.get(0..12).unwrap_or(f));
    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return mac_hash(frame);
    };
    // Skip one 802.1Q/802.1ad tag so tagged and untagged packets of
    // the same flow hash together.
    let (ethertype, l3) = match eth.ethertype() {
        EtherType::Vlan | EtherType::QinQ => match VlanFrame::new_checked(eth.payload()) {
            Ok(v) => (v.inner_ethertype(), &eth.payload()[4..]),
            Err(_) => return mac_hash(frame),
        },
        t => (t, eth.payload()),
    };
    match ethertype {
        EtherType::Ipv4 => {
            let Ok(ip) = Ipv4Packet::new_checked(l3) else {
                return mac_hash(frame);
            };
            let mut tuple = [0u8; 13];
            tuple[0..4].copy_from_slice(&ip.src().to_be_bytes());
            tuple[4..8].copy_from_slice(&ip.dst().to_be_bytes());
            match ip.protocol() {
                p @ (IpProtocol::Tcp | IpProtocol::Udp) => {
                    tuple[8] = match p {
                        IpProtocol::Tcp => 6,
                        _ => 17,
                    };
                    let l4 = &l3[ip.header_len()..];
                    if l4.len() >= 4 {
                        tuple[9..13].copy_from_slice(&l4[0..4]);
                    }
                    crc32(&tuple)
                }
                _ => crc32(&tuple[0..8]),
            }
        }
        EtherType::Ipv6 => {
            let Ok(ip) = Ipv6Packet::new_checked(l3) else {
                return mac_hash(frame);
            };
            let mut tuple = [0u8; 37];
            tuple[0..16].copy_from_slice(&ip.src().0);
            tuple[16..32].copy_from_slice(&ip.dst().0);
            match ip.next_header() {
                p @ (IpProtocol::Tcp | IpProtocol::Udp) if l3.len() >= 44 => {
                    tuple[32] = match p {
                        IpProtocol::Tcp => 6,
                        _ => 17,
                    };
                    // Fixed 40-byte IPv6 header: ports follow directly.
                    tuple[33..37].copy_from_slice(&l3[40..44]);
                    crc32(&tuple)
                }
                _ => crc32(&tuple[0..32]),
            }
        }
        _ => mac_hash(frame),
    }
}

/// One message on a dispatcher→shard ring.
enum ShardMsg {
    /// A dataplane packet routed to this shard by flow hash; `seq` is
    /// the global input sequence number.
    Packet { seq: u64, pkt: SimPacket },
    /// A control-plane frame, broadcast to every shard so table
    /// mutations and reboots replicate; only the primary answers.
    Control { seq: u64, pkt: SimPacket },
    /// Flush barrier: emit everything pending, then acknowledge that
    /// all outputs with sequence ≤ `upto` have been emitted.
    Barrier { upto: u64 },
    /// End of stream: finish the session and report.
    Eof,
}

/// One message on a shard→dispatcher ring.
enum ShardOut {
    /// An output packet, tagged with the input sequence that produced it.
    Out(u64, OutputPacket),
    /// Everything with sequence ≤ `upto` from this shard is out.
    Watermark(u64),
    /// The shard is done; its run report and telemetry.
    Done(Box<ShardDone>),
}

/// A finished shard's results.
struct ShardDone {
    report: SimReport,
    snapshot: TelemetrySnapshot,
}

type MsgChunk = Vec<ShardMsg>;
type OutChunk = Vec<ShardOut>;

/// One shard's execution state: the module, its live stream session,
/// and whether this shard answers control frames. The same engine runs
/// on a worker thread (threaded transport) or inline on the dispatcher
/// (clamped/single-shard transport) — transport choice cannot change
/// behavior.
struct ShardEngine {
    module: FlexSfp,
    session: Option<StreamSession>,
    primary: bool,
}

impl ShardEngine {
    fn new(mut module: FlexSfp, primary: bool) -> ShardEngine {
        let session = module.begin_stream();
        ShardEngine {
            module,
            session: Some(session),
            primary,
        }
    }

    /// Process one message; returns true when the shard is done (Eof).
    fn handle(&mut self, msg: ShardMsg, emit: &mut impl FnMut(ShardOut)) -> bool {
        let session = self.session.as_mut().expect("message after Eof");
        match msg {
            ShardMsg::Packet { seq, pkt } => {
                session.offer(&mut self.module, seq, pkt, &mut |tag, out| {
                    emit(ShardOut::Out(tag, out))
                });
                false
            }
            ShardMsg::Control { seq, pkt } => {
                if self.primary {
                    session.offer(&mut self.module, seq, pkt, &mut |tag, out| {
                        emit(ShardOut::Out(tag, out))
                    });
                } else {
                    // Replica: apply the mutation, suppress the
                    // duplicate response. Flush first so the
                    // suppressing sink can only ever see the control
                    // reply — never batched dataplane outputs.
                    session.flush(&mut self.module, &mut |tag, out| {
                        emit(ShardOut::Out(tag, out))
                    });
                    session.offer(&mut self.module, seq, pkt, &mut |_, _| {});
                }
                false
            }
            ShardMsg::Barrier { upto } => {
                session.flush(&mut self.module, &mut |tag, out| {
                    emit(ShardOut::Out(tag, out))
                });
                emit(ShardOut::Watermark(upto));
                false
            }
            ShardMsg::Eof => {
                let session = self.session.take().expect("double Eof");
                let report = session.finish(&mut self.module, &mut |tag, out| {
                    emit(ShardOut::Out(tag, out))
                });
                let snapshot = self.module.telemetry_snapshot();
                emit(ShardOut::Done(Box::new(ShardDone { report, snapshot })));
                true
            }
        }
    }
}

/// A tagged output waiting in the reconciler heap. Ordered by global
/// sequence, *reversed* so `BinaryHeap` (a max-heap) pops the lowest
/// sequence first. Sequences are unique — each input emits at most one
/// output — so comparing tags alone is a total order.
struct HeapOut {
    seq: u64,
    out: OutputPacket,
}

impl PartialEq for HeapOut {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for HeapOut {}
impl PartialOrd for HeapOut {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapOut {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.seq.cmp(&self.seq)
    }
}

/// The departure-order reconciler: buffers tagged shard outputs and
/// releases them in global input order, gated by per-shard watermarks.
///
/// Invariant: an output with sequence `s` is released only once every
/// shard's watermark exceeds `s` — i.e. every shard has flushed
/// everything it will ever emit at or below `s`, and (because each
/// ring is FIFO and the watermark token follows the outputs it covers)
/// those outputs are already in the heap. Release order is therefore
/// strictly ascending in `s`, independent of thread timing: exactly
/// the serial sink order.
struct Reconciler {
    heap: BinaryHeap<HeapOut>,
    /// Per shard: all outputs with sequence < `watermarks[i]` are final.
    watermarks: Vec<u64>,
    results: Vec<Option<ShardDone>>,
    done: usize,
}

impl Reconciler {
    fn new(shards: usize) -> Reconciler {
        Reconciler {
            heap: BinaryHeap::new(),
            watermarks: vec![0; shards],
            results: (0..shards).map(|_| None).collect(),
            done: 0,
        }
    }

    fn accept(&mut self, shard: usize, msg: ShardOut, sink: &mut impl FnMut(OutputPacket)) {
        match msg {
            ShardOut::Out(seq, out) => self.heap.push(HeapOut { seq, out }),
            ShardOut::Watermark(upto) => {
                self.watermarks[shard] = self.watermarks[shard].max(upto + 1);
                self.release(sink);
            }
            ShardOut::Done(d) => {
                self.watermarks[shard] = u64::MAX;
                self.results[shard] = Some(*d);
                self.done += 1;
                self.release(sink);
            }
        }
    }

    fn release(&mut self, sink: &mut impl FnMut(OutputPacket)) {
        let floor = *self.watermarks.iter().min().expect("at least one shard");
        while self.heap.peek().is_some_and(|h| h.seq < floor) {
            sink(self.heap.pop().expect("peeked").out);
        }
    }
}

/// Dispatcher-side accounting, merged into the final report.
#[derive(Default)]
struct DispatchStats {
    offered: u64,
    offered_bytes: u64,
    unsorted: u64,
    last_arrival_ns: u64,
    backpressure: u64,
    routed: Vec<u64>,
}

/// How messages reach shards and outputs come back. Two
/// implementations: worker threads over SPSC rings, or inline
/// execution on the dispatcher thread (single shard, or parallelism
/// clamped by nesting / `FLEXSFP_THREADS=1`). The dispatch loop and
/// reconciler are shared, so both produce identical output streams.
trait Transport<F: FnMut(OutputPacket)> {
    /// Queue `msg` for `shard`. May buffer; order per shard is
    /// preserved.
    fn send(
        &mut self,
        shard: usize,
        msg: ShardMsg,
        recon: &mut Reconciler,
        sink: &mut F,
        stats: &mut DispatchStats,
    );
    /// Push every buffered chunk out now (barrier/Eof points).
    fn flush(&mut self, recon: &mut Reconciler, sink: &mut F, stats: &mut DispatchStats);
    /// Nonblocking drain of shard outputs into the reconciler.
    fn poll(&mut self, recon: &mut Reconciler, sink: &mut F);
    /// Block (yielding) until every shard has reported Done.
    fn wait_done(&mut self, recon: &mut Reconciler, sink: &mut F);
    /// Global-sequence distance between flush barriers. Barriers are
    /// digest-neutral (a flush drains pending outputs in admission
    /// order, it never reorders or retimes them), so each transport
    /// picks the cadence that suits its cost model.
    fn barrier_every(&self) -> u64;
}

/// Inline transport: engines live on the dispatcher thread and handle
/// every message synchronously. The degenerate one-core case — and the
/// reference the threaded path is digest-compared against in tests.
struct InlineTransport {
    engines: Vec<ShardEngine>,
}

impl<F: FnMut(OutputPacket)> Transport<F> for InlineTransport {
    fn send(
        &mut self,
        shard: usize,
        msg: ShardMsg,
        recon: &mut Reconciler,
        sink: &mut F,
        _stats: &mut DispatchStats,
    ) {
        self.engines[shard].handle(msg, &mut |out| recon.accept(shard, out, sink));
    }

    fn flush(&mut self, _recon: &mut Reconciler, _sink: &mut F, _stats: &mut DispatchStats) {}
    fn poll(&mut self, _recon: &mut Reconciler, _sink: &mut F) {}
    fn wait_done(&mut self, _recon: &mut Reconciler, _sink: &mut F) {}
    fn barrier_every(&self) -> u64 {
        INLINE_BARRIER_EVERY
    }
}

/// Threaded transport: one worker thread per shard, chunked SPSC rings
/// both ways.
struct ThreadedTransport {
    to_shard: Vec<Producer<MsgChunk>>,
    from_shard: Vec<Consumer<OutChunk>>,
    chunks: Vec<MsgChunk>,
}

impl ThreadedTransport {
    fn push_chunk<F: FnMut(OutputPacket)>(
        &mut self,
        shard: usize,
        recon: &mut Reconciler,
        sink: &mut F,
        stats: &mut DispatchStats,
    ) {
        if self.chunks[shard].is_empty() {
            return;
        }
        let mut chunk = std::mem::replace(&mut self.chunks[shard], Vec::with_capacity(CHUNK));
        let mut stalled = false;
        while let Err(back) = self.to_shard[shard].try_push(chunk) {
            // Backpressure: the shard's ring is full. Drain outputs so
            // workers (and the reconciler) make progress, then retry.
            if !stalled {
                stats.backpressure += 1;
                stalled = true;
            }
            chunk = back;
            self.drain(recon, sink);
            std::thread::yield_now();
        }
    }

    fn drain<F: FnMut(OutputPacket)>(&mut self, recon: &mut Reconciler, sink: &mut F) {
        for (shard, rx) in self.from_shard.iter_mut().enumerate() {
            while let Some(chunk) = rx.try_pop() {
                for out in chunk {
                    recon.accept(shard, out, sink);
                }
            }
        }
    }
}

impl<F: FnMut(OutputPacket)> Transport<F> for ThreadedTransport {
    fn send(
        &mut self,
        shard: usize,
        msg: ShardMsg,
        recon: &mut Reconciler,
        sink: &mut F,
        stats: &mut DispatchStats,
    ) {
        self.chunks[shard].push(msg);
        if self.chunks[shard].len() >= CHUNK {
            self.push_chunk(shard, recon, sink, stats);
        }
    }

    fn flush(&mut self, recon: &mut Reconciler, sink: &mut F, stats: &mut DispatchStats) {
        for shard in 0..self.chunks.len() {
            self.push_chunk(shard, recon, sink, stats);
        }
    }

    fn poll(&mut self, recon: &mut Reconciler, sink: &mut F) {
        self.drain(recon, sink);
    }

    fn wait_done(&mut self, recon: &mut Reconciler, sink: &mut F) {
        while recon.done < recon.results.len() {
            self.drain(recon, sink);
            std::thread::yield_now();
        }
    }

    fn barrier_every(&self) -> u64 {
        BARRIER_EVERY
    }
}

/// The dispatch loop shared by both transports: account, enforce
/// global arrival order, classify control frames (broadcast) vs
/// dataplane (flow-hash), and punctuate with flush barriers.
fn drive<I, F, T>(
    packets: I,
    shards: usize,
    classifier: &ControlPlane,
    transport: &mut T,
    recon: &mut Reconciler,
    sink: &mut F,
) -> DispatchStats
where
    I: IntoIterator<Item = SimPacket>,
    F: FnMut(OutputPacket),
    T: Transport<F>,
{
    let mut stats = DispatchStats {
        routed: vec![0; shards],
        ..DispatchStats::default()
    };
    let mut seq = 0u64;
    let mut prev_arrival = 0u64;
    let barrier_every = transport.barrier_every();
    for pkt in packets {
        stats.offered += 1;
        stats.offered_bytes += pkt.frame.len() as u64;
        if pkt.arrival_ns < prev_arrival {
            // The serial path drops globally-unsorted stragglers; the
            // dispatcher must enforce the same *global* order — shard
            // subsequences of an unsorted trace could each look sorted.
            stats.unsorted += 1;
            continue;
        }
        prev_arrival = pkt.arrival_ns;
        stats.last_arrival_ns = stats.last_arrival_ns.max(pkt.arrival_ns);

        let is_control = pkt.direction == flexsfp_ppe::Direction::EdgeToOptical
            && classifier.classify(&pkt.frame);
        if is_control {
            // Broadcast: every shard must replay the mutation in
            // stream position. Shard 0 answers; replicas suppress.
            for shard in 0..shards {
                transport.send(
                    shard,
                    ShardMsg::Control {
                        seq,
                        pkt: pkt.clone(),
                    },
                    recon,
                    sink,
                    &mut stats,
                );
            }
        } else {
            let shard = shard_for(&pkt.frame, shards);
            stats.routed[shard] += 1;
            transport.send(
                shard,
                ShardMsg::Packet { seq, pkt },
                recon,
                sink,
                &mut stats,
            );
        }
        seq += 1;
        if seq.is_multiple_of(barrier_every) {
            for shard in 0..shards {
                transport.send(
                    shard,
                    ShardMsg::Barrier { upto: seq - 1 },
                    recon,
                    sink,
                    &mut stats,
                );
            }
            transport.flush(recon, sink, &mut stats);
        }
        transport.poll(recon, sink);
    }
    for shard in 0..shards {
        transport.send(shard, ShardMsg::Eof, recon, sink, &mut stats);
    }
    transport.flush(recon, sink, &mut stats);
    transport.wait_done(recon, sink);
    stats
}

/// Result of a sharded run: the merged report and telemetry, plus
/// dispatch-layer accounting.
pub struct ShardedRun {
    /// Aggregate simulation report, field-for-field comparable to the
    /// serial [`FlexSfp::run_stream`] report (outputs not retained).
    pub report: SimReport,
    /// Merged telemetry snapshot across all shard modules.
    pub snapshot: TelemetrySnapshot,
    /// Number of shards the run used.
    pub shards: usize,
    /// Dispatcher stall episodes on full shard rings (backpressure).
    pub backpressure: u64,
    /// Dataplane packets routed per shard (control broadcasts excluded).
    pub routed: Vec<u64>,
}

/// Run one packet stream across `shards` module instances and emit
/// every output, in exactly the serial `run_stream_with` sink order,
/// to `sink`.
///
/// `make_module` is called once per shard (on the worker thread that
/// owns the shard) and must build modules with the same `config` the
/// dispatcher classifies control frames with — shards are replicas of
/// one logical module, not distinct devices.
///
/// With one shard, with `FLEXSFP_THREADS=1`, or when invoked from
/// inside another parallel region (a `par_map` sweep point or another
/// sharded run), everything runs inline on the calling thread — same
/// engines, same reconciler, byte-identical output — instead of
/// oversubscribing the host.
pub fn run_sharded<I, M, F>(
    shards: usize,
    config: &ModuleConfig,
    make_module: M,
    packets: I,
    mut sink: F,
) -> ShardedRun
where
    I: IntoIterator<Item = SimPacket>,
    M: Fn(usize) -> FlexSfp + Send + Sync,
    F: FnMut(OutputPacket),
{
    let shards = shards.max(1);
    let classifier = ControlPlane::new(config.mgmt_mac, config.mgmt_ip, config.auth_key);
    let mut recon = Reconciler::new(shards);

    let stats = if shards == 1 || par::effective_parallelism() == 1 {
        let mut transport = InlineTransport {
            engines: (0..shards)
                .map(|i| ShardEngine::new(make_module(i), i == 0))
                .collect(),
        };
        drive(
            packets,
            shards,
            &classifier,
            &mut transport,
            &mut recon,
            &mut sink,
        )
    } else {
        // Worker threads + rings. Register the region so nested
        // parallel work (a sweep inside an app, another sharded run)
        // clamps to one thread instead of multiplying.
        let _region = par::RegionGuard::enter();
        std::thread::scope(|scope| {
            let mut to_shard = Vec::with_capacity(shards);
            let mut from_shard = Vec::with_capacity(shards);
            for i in 0..shards {
                let (msg_tx, msg_rx) = channel::<MsgChunk>(RING_CHUNKS);
                let (out_tx, out_rx) = channel::<OutChunk>(RING_CHUNKS);
                to_shard.push(msg_tx);
                from_shard.push(out_rx);
                let make_module = &make_module;
                scope.spawn(move || {
                    worker_loop(ShardEngine::new(make_module(i), i == 0), msg_rx, out_tx)
                });
            }
            let mut transport = ThreadedTransport {
                to_shard,
                from_shard,
                chunks: (0..shards).map(|_| Vec::with_capacity(CHUNK)).collect(),
            };
            drive(
                packets,
                shards,
                &classifier,
                &mut transport,
                &mut recon,
                &mut sink,
            )
        })
    };

    merge(stats, recon, shards)
}

/// The worker side of the threaded transport: pop message chunks,
/// handle them, push output chunks. Outputs buffer up to [`CHUNK`]
/// deep but always flush at barriers and Eof, so watermark latency is
/// bounded by the barrier cadence.
fn worker_loop(mut engine: ShardEngine, mut rx: Consumer<MsgChunk>, mut tx: Producer<OutChunk>) {
    let mut buf: OutChunk = Vec::new();
    loop {
        let Some(chunk) = rx.try_pop() else {
            std::thread::yield_now();
            continue;
        };
        for msg in chunk {
            let flush_now = matches!(msg, ShardMsg::Barrier { .. } | ShardMsg::Eof);
            let done = engine.handle(msg, &mut |out| buf.push(out));
            if buf.len() >= CHUNK || (flush_now && !buf.is_empty()) {
                let mut out = std::mem::take(&mut buf);
                while let Err(back) = tx.try_push(out) {
                    out = back;
                    std::thread::yield_now();
                }
            }
            if done {
                return;
            }
        }
    }
}

/// Merge the dispatcher's accounting and every shard's report and
/// snapshot into the aggregate view.
fn merge(stats: DispatchStats, recon: Reconciler, shards: usize) -> ShardedRun {
    let results: Vec<ShardDone> = recon
        .results
        .into_iter()
        .map(|r| r.expect("every shard reported Done"))
        .collect();
    let mut report = SimReport {
        // Input accounting comes from the dispatcher: control
        // broadcasts reach every shard and would count `offered` once
        // per shard. Unsorted stragglers never reach a shard at all.
        offered: stats.offered,
        offered_bytes: stats.offered_bytes,
        duration_ns: stats.last_arrival_ns,
        ..SimReport::default()
    };
    report.drops.unsorted = stats.unsorted;
    let mut snapshot: Option<TelemetrySnapshot> = None;
    for (i, shard) in results.iter().enumerate() {
        let r = &shard.report;
        report.forwarded.0 += r.forwarded.0;
        report.forwarded.1 += r.forwarded.1;
        report.forwarded_bytes += r.forwarded_bytes;
        report.drops.fifo_overflow += r.drops.fifo_overflow;
        report.drops.app += r.drops.app;
        report.drops.link += r.drops.link;
        report.to_control += r.to_control;
        report.cp_originated += r.cp_originated;
        if i == 0 {
            // The primary alone answers control frames; replicas
            // handled the same frames but their counts are duplicates.
            report.control_handled = r.control_handled;
        }
        report.latency.merge(&r.latency);
        report.duration_ns = report.duration_ns.max(r.duration_ns);
        match snapshot.as_mut() {
            None => snapshot = Some(shard.snapshot.clone()),
            Some(s) => s.merge_shard(&shard.snapshot),
        }
    }
    ShardedRun {
        report,
        snapshot: snapshot.expect("at least one shard"),
        shards,
        backpressure: stats.backpressure,
        routed: stats.routed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal Ethernet/IPv4/UDP frame with the given 5-tuple, padded
    /// with `extra` payload bytes.
    fn udp_frame(src: u32, dst: u32, sport: u16, dport: u16, extra: usize) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]); // dst MAC
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]); // src MAC
        f.extend_from_slice(&0x0800u16.to_be_bytes());
        let ip_len = 20 + 8 + extra;
        f.push(0x45); // v4, IHL 5
        f.push(0);
        f.extend_from_slice(&(ip_len as u16).to_be_bytes());
        f.extend_from_slice(&[0, 0, 0, 0]); // id, flags/frag
        f.push(64); // TTL
        f.push(17); // UDP
        f.extend_from_slice(&[0, 0]); // checksum (unchecked here)
        f.extend_from_slice(&src.to_be_bytes());
        f.extend_from_slice(&dst.to_be_bytes());
        f.extend_from_slice(&sport.to_be_bytes());
        f.extend_from_slice(&dport.to_be_bytes());
        f.extend_from_slice(&((8 + extra) as u16).to_be_bytes());
        f.extend_from_slice(&[0, 0]); // UDP checksum
        f.extend(std::iter::repeat_n(0xabu8, extra));
        f
    }

    #[test]
    fn hash_is_flow_stable_and_spreads() {
        // Same 5-tuple → same shard, regardless of payload length.
        let mut a = udp_frame(0xc0a8_0001, 0x6540_0001, 1111, 53, 10);
        let b = udp_frame(0xc0a8_0001, 0x6540_0001, 1111, 53, 700);
        assert_eq!(shard_for(&a, 8), shard_for(&b, 8));
        // Different flows spread: 64 flows over 8 shards must touch
        // more than one shard.
        let shards: std::collections::HashSet<usize> = (0..64u32)
            .map(|i| shard_for(&udp_frame(0xc0a8_0000 + i, 0x6540_0001, 1024, 53, 10), 8))
            .collect();
        assert!(shards.len() > 1, "all flows landed on one shard");
        // Truncated runts fall back to the MAC hash instead of
        // panicking; so does the empty frame.
        a.truncate(10);
        let _ = shard_for(&a, 4);
        let _ = shard_for(&[], 4);
    }

    #[test]
    fn vlan_tag_is_transparent_to_the_flow_hash() {
        let plain = udp_frame(0xc0a8_0001, 0x6540_0001, 4242, 80, 10);
        let mut tagged = plain[0..12].to_vec();
        tagged.extend_from_slice(&0x8100u16.to_be_bytes());
        tagged.extend_from_slice(&[0x20, 0x01]); // PCP/VID
        tagged.extend_from_slice(&plain[12..]); // inner ethertype onward
        assert_eq!(flow_hash(&plain), flow_hash(&tagged));
    }

    #[test]
    fn reconciler_releases_in_seq_order_behind_watermarks() {
        let out = |departure_ns: u64| OutputPacket {
            departure_ns,
            egress: flexsfp_core::Interface::Optical,
            frame: vec![],
            latency_ns: 0.0,
        };
        let mut r = Reconciler::new(2);
        let mut got: Vec<u64> = Vec::new();
        // Outputs arrive out of order across shards; nothing may be
        // released before both shards' watermarks pass it.
        r.accept(0, ShardOut::Out(3, out(3)), &mut |o| {
            got.push(o.departure_ns)
        });
        r.accept(1, ShardOut::Out(1, out(1)), &mut |o| {
            got.push(o.departure_ns)
        });
        r.accept(0, ShardOut::Watermark(5), &mut |o| got.push(o.departure_ns));
        assert!(got.is_empty(), "released past shard 1's watermark");
        r.accept(1, ShardOut::Out(0, out(0)), &mut |o| {
            got.push(o.departure_ns)
        });
        r.accept(1, ShardOut::Watermark(2), &mut |o| got.push(o.departure_ns));
        assert_eq!(got, vec![0, 1], "seq ≤ 2 released in order, 3 held");
        r.accept(1, ShardOut::Watermark(5), &mut |o| got.push(o.departure_ns));
        assert_eq!(got, vec![0, 1, 3]);
    }
}
