//! The sharded multicore dataplane: one simulation spread across every
//! core, digest-identical to the serial path.
//!
//! `run_stream` drives one [`FlexSfp`] on one thread — ~11 Mpps on the
//! committed baseline, and the ceiling for every rack- and city-scale
//! experiment built on top of it. This module splits a single workload
//! across N per-core module instances the way an RSS-capable NIC
//! splits a line into queues:
//!
//! 1. **Dispatch** — the dispatcher extracts each frame's microflow
//!    key ([`flexsfp_ppe::FlowKey`]) exactly once and derives
//!    everything from it: the CRC-32 flow hash that picks the shard
//!    ([`shard_for`]), the control-plane negative filter
//!    ([`ControlPlane::may_classify`]), and the key hint the shard's
//!    flow cache will use — no stage downstream re-parses the frame.
//!    Frames the key cannot describe (non-IPv4, options, deep tag
//!    stacks) take [`slow_flow_hash`], a full shallow parse that
//!    agrees with the fused path wherever both are defined (the
//!    parse-edge-case suite pins this). Frames the control plane
//!    claims are *broadcast* to all shards (see below).
//! 2. **Per-shard modules** — each worker core owns a full [`FlexSfp`]
//!    (its own flow cache, PPE server model, flight recorder,
//!    windowed telemetry), fed over a bounded SPSC ring
//!    ([`flexsfp_fabric::ring`]) via batched `push_slice`/`pop_chunk`
//!    ops that publish one atomic position per chunk. Staging buffers
//!    persist for the life of the run — the steady state allocates
//!    O(shards) chunk buffers total ([`ShardedRun::chunk_allocs`]).
//!    Frames cross the rings as moves; the only copy anywhere in the
//!    pipeline is the control-frame broadcast, leased from a
//!    [`SharedPacketArena`] and accounted in
//!    [`ShardedRun::frame_copies`].
//! 3. **Reconcile** — a sequence-indexed window buffer merges the
//!    shard output streams back into exactly the serial sink order.
//!    Watermarks make the merge safe and bounded: at a per-transport
//!    cadence ([`BARRIER_EVERY`] threaded, [`INLINE_BARRIER_EVERY`]
//!    inline) the dispatcher broadcasts a flush barrier; a shard that
//!    has flushed everything up to sequence `s` says so, and the
//!    window releases outputs only below the minimum watermark across
//!    shards — an O(1) slot write per output and an O(1) pop per
//!    release, no heap.
//!
//! # Why the digest cannot change
//!
//! Serial `run_stream_with` emits outputs in global input order (the
//! batched pipeline drains in admission order, and every out-of-band
//! path — control, microservice, bypass — flushes the batch before
//! emitting). The reconciler reproduces exactly that order from the
//! tags. The *contents* of each output match because every §3
//! application keys its dataplane state by flow or by source, and the
//! dispatch hash maps each flow to exactly one shard; control-plane
//! mutations (table writes, reboots) are broadcast to every shard in
//! stream position, so all shards make the same state transitions the
//! serial module makes. Departure *times* match because the PPE
//! queueing model is work-conserving and the offered loads of the
//! golden workloads never backlog the server (utilization ≤ 1), so a
//! packet's departure depends only on its own arrival and length —
//! not on queue-mates that may now live on other shards. The digest
//! parity suite (`stream_parity`) pins all of this for all 11 apps at
//! 1/2/4/8 shards, down to the exact mean latency (the histogram sum
//! is an integer, so per-shard merges are bit-exact).
//!
//! Control frames are answered by shard 0 only (the *primary*);
//! replicas apply the mutation but suppress the duplicate response.
//! The merged [`SimReport`] therefore takes `control_handled` from the
//! primary, input accounting from the dispatcher (broadcasts would
//! double-count), and sums or max-merges everything else; latency
//! histograms merge exactly.

use crate::par;
use flexsfp_core::module::OutputPacket;
use flexsfp_core::{ControlPlane, FlexSfp, ModuleConfig, SimPacket, SimReport, StreamSession};
use flexsfp_fabric::hash::crc32;
use flexsfp_fabric::ring::{channel, Consumer, Producer};
use flexsfp_obs::TelemetrySnapshot;
use flexsfp_ppe::{Direction, FlowKey, KeyHint};
use flexsfp_wire::{
    EtherType, EthernetFrame, IpProtocol, Ipv4Packet, Ipv6Packet, SharedPacketArena, VlanFrame,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Dispatcher-to-shard ring capacity in historical chunk units; with
/// item rings the capacity is [`RING_ITEMS`] = `RING_CHUNKS * CHUNK`
/// messages (kept equal to the old chunked capacity so the arena
/// in-flight bound is unchanged).
pub const RING_CHUNKS: usize = 64;
/// Messages staged per batched ring operation: one position publish
/// per `CHUNK` packets instead of per packet.
pub const CHUNK: usize = 64;
/// Ring capacity in messages.
pub const RING_ITEMS: usize = RING_CHUNKS * CHUNK;
/// Global-sequence distance between flush barriers on the threaded
/// transport. Bounds reconciler window growth to roughly one barrier
/// interval plus the in-flight ring contents, and bounds how long a
/// shard may sit on a partial batch.
pub const BARRIER_EVERY: u64 = 4096;
/// Barrier distance on the inline transport. Every barrier flushes
/// each shard's partial PPE batch, so a tight cadence wastes batch
/// amortization (at 4 shards and a 32-packet batch, a 256 cadence
/// truncates every other batch); a loose one grows the reconciler's
/// resident window — how many output frames stay live before the sink
/// can recycle them. 1024 keeps the flush tax under a percent while
/// the window (≈48 KB of slots plus the frames) still sits in L2,
/// far inside the sharded arena bound.
pub const INLINE_BARRIER_EVERY: u64 = 1024;

/// Shallow-parse `frame` and pick its shard among `shards` by flow
/// hash: CRC-32 (the fabric hash primitive) over the packed
/// src/dst/proto/ports 5-tuple for IPv4 with a valid first-fragment
/// L4 header, src/dst for other IPv4, the analogous tuple for IPv6
/// (with a bounded extension-header walk), and the MAC pair for
/// anything else. Up to two VLAN tags are transparent. Every packet
/// of a flow — and every non-flow frame between the same two
/// stations — lands on the same shard.
pub fn shard_for(frame: &[u8], shards: usize) -> usize {
    shard_index(flow_hash(frame), shards.max(1))
}

/// Map a 32-bit flow hash onto `shards` buckets with a multiply-shift
/// (Lemire) reduction: uniform like `% shards` but free of the
/// per-packet integer division a runtime modulus would cost.
fn shard_index(hash: u32, shards: usize) -> usize {
    ((u64::from(hash) * shards as u64) >> 32) as usize
}

/// The fused hash: one [`FlowKey`] extraction covers the common case;
/// frames the key cannot describe take the full shallow parse. Both
/// paths agree wherever both are defined.
fn flow_hash(frame: &[u8]) -> u32 {
    // The key's direction bit does not feed the hash, so either
    // direction yields the same result.
    match FlowKey::extract(frame, Direction::EdgeToOptical) {
        Some(key) => hash_of_key(&key),
        None => slow_flow_hash(frame),
    }
}

/// Flow hash from an already-extracted key: no frame access at all.
fn hash_of_key(key: &FlowKey) -> u32 {
    let mut tuple = [0u8; 13];
    tuple[0..4].copy_from_slice(&key.src_ip().to_be_bytes());
    tuple[4..8].copy_from_slice(&key.dst_ip().to_be_bytes());
    if key.l4_valid() {
        tuple[8] = key.proto();
        tuple[9..11].copy_from_slice(&key.src_port().to_be_bytes());
        tuple[11..13].copy_from_slice(&key.dst_port().to_be_bytes());
        crc32(&tuple)
    } else {
        // No valid L4 (fragment, other proto, truncated header): the
        // address pair alone keys the flow, so every fragment of a
        // datagram lands on the same shard.
        crc32(&tuple[0..8])
    }
}

/// The reference shallow parse, for frames outside the key's canonical
/// shape — and the oracle the fused path is property-tested against:
/// whenever [`FlowKey::extract`] succeeds, this function returns
/// exactly [`hash_of_key`] of that key.
fn slow_flow_hash(frame: &[u8]) -> u32 {
    let mac_hash = |f: &[u8]| crc32(f.get(0..12).unwrap_or(f));
    let Ok(eth) = EthernetFrame::new_checked(frame) else {
        return mac_hash(frame);
    };
    // Skip up to two 802.1Q/802.1ad tags so tagged, QinQ-tagged and
    // untagged packets of the same flow hash together.
    let mut ethertype = eth.ethertype();
    let mut l3 = eth.payload();
    let mut tags = 0u8;
    while ethertype.is_vlan() && tags < 2 {
        match VlanFrame::new_checked(l3) {
            Ok(v) => {
                ethertype = v.inner_ethertype();
                l3 = &l3[4..];
                tags += 1;
            }
            Err(_) => return mac_hash(frame),
        }
    }
    match ethertype {
        EtherType::Ipv4 => {
            let Ok(ip) = Ipv4Packet::new_checked(l3) else {
                return mac_hash(frame);
            };
            let mut tuple = [0u8; 13];
            tuple[0..4].copy_from_slice(&ip.src().to_be_bytes());
            tuple[4..8].copy_from_slice(&ip.dst().to_be_bytes());
            // L4 validity mirrors FlowKey::extract: first fragment
            // only (offset 0 — MF may be set, the first fragment
            // still carries the L4 header), header fully inside the
            // IP payload.
            let payload = ip.payload();
            let l4_ports = if ip.frag_offset() != 0 {
                None
            } else {
                match ip.protocol() {
                    IpProtocol::Tcp if payload.len() >= 20 => {
                        let doff = usize::from(payload[12] >> 4) * 4;
                        ((20..=60).contains(&doff) && doff <= payload.len())
                            .then(|| (6u8, [payload[0], payload[1], payload[2], payload[3]]))
                    }
                    IpProtocol::Udp if payload.len() >= 8 => {
                        let ulen = u16::from_be_bytes([payload[4], payload[5]]) as usize;
                        ((8..=payload.len()).contains(&ulen))
                            .then(|| (17u8, [payload[0], payload[1], payload[2], payload[3]]))
                    }
                    _ => None,
                }
            };
            match l4_ports {
                Some((proto, ports)) => {
                    tuple[8] = proto;
                    tuple[9..13].copy_from_slice(&ports);
                    crc32(&tuple)
                }
                None => crc32(&tuple[0..8]),
            }
        }
        EtherType::Ipv6 => {
            let Ok(ip) = Ipv6Packet::new_checked(l3) else {
                return mac_hash(frame);
            };
            let mut tuple = [0u8; 37];
            tuple[0..16].copy_from_slice(&ip.src().0);
            tuple[16..32].copy_from_slice(&ip.dst().0);
            // Bounded extension-header walk: hop-by-hop (0), routing
            // (43) and destination-options (60) are sized (len+1)*8
            // and skipped; a fragment header (44) means no ports (the
            // L4 header may be in another fragment); anything else
            // terminates the walk.
            let mut next = l3[6];
            let mut off = 40usize;
            for _ in 0..4 {
                match next {
                    0 | 43 | 60 => {
                        if l3.len() < off + 8 {
                            return crc32(&tuple[0..32]);
                        }
                        let ext_len = (usize::from(l3[off + 1]) + 1) * 8;
                        next = l3[off];
                        off += ext_len;
                    }
                    6 | 17 if l3.len() >= off + 4 => {
                        tuple[32] = next;
                        tuple[33..37].copy_from_slice(&l3[off..off + 4]);
                        return crc32(&tuple);
                    }
                    _ => return crc32(&tuple[0..32]),
                }
            }
            crc32(&tuple[0..32])
        }
        _ => mac_hash(frame),
    }
}

/// One message on a dispatcher→shard ring.
enum ShardMsg {
    /// A dataplane packet routed to this shard by flow hash; `seq` is
    /// the global input sequence number and `key` the dispatcher's
    /// one-and-only shallow parse of the frame.
    Packet {
        seq: u64,
        pkt: SimPacket,
        key: KeyHint,
    },
    /// A control-plane frame, broadcast to every shard so table
    /// mutations and reboots replicate; only the primary answers.
    Control {
        seq: u64,
        pkt: SimPacket,
        key: KeyHint,
    },
    /// Flush barrier: emit everything pending, then acknowledge that
    /// all outputs with sequence ≤ `upto` have been emitted.
    Barrier { upto: u64 },
    /// End of stream: finish the session and report.
    Eof,
}

/// One message on a shard→dispatcher ring.
enum ShardOut {
    /// An output packet, tagged with the input sequence that produced it.
    Out(u64, OutputPacket),
    /// Everything with sequence ≤ `upto` from this shard is out.
    Watermark(u64),
    /// The shard is done; its run report and telemetry.
    Done(Box<ShardDone>),
}

/// A finished shard's results.
struct ShardDone {
    report: SimReport,
    snapshot: TelemetrySnapshot,
}

/// One shard's execution state: the module, its live stream session,
/// and whether this shard answers control frames. The same engine runs
/// on a worker thread (threaded transport) or inline on the dispatcher
/// (clamped/single-shard transport) — transport choice cannot change
/// behavior.
struct ShardEngine {
    module: FlexSfp,
    session: Option<StreamSession>,
    primary: bool,
}

impl ShardEngine {
    fn new(mut module: FlexSfp, primary: bool) -> ShardEngine {
        let session = module.begin_stream();
        ShardEngine {
            module,
            session: Some(session),
            primary,
        }
    }

    /// Process one message; returns true when the shard is done (Eof).
    fn handle(&mut self, msg: ShardMsg, emit: &mut impl FnMut(ShardOut)) -> bool {
        let session = self.session.as_mut().expect("message after Eof");
        match msg {
            ShardMsg::Packet { seq, pkt, key } => {
                session.offer_with_key(&mut self.module, seq, pkt, key, &mut |tag, out| {
                    emit(ShardOut::Out(tag, out))
                });
                false
            }
            ShardMsg::Control { seq, pkt, key } => {
                if self.primary {
                    session.offer_with_key(&mut self.module, seq, pkt, key, &mut |tag, out| {
                        emit(ShardOut::Out(tag, out))
                    });
                } else {
                    // Replica: apply the mutation, suppress the
                    // duplicate response. Flush first so the
                    // suppressing sink can only ever see the control
                    // reply — never batched dataplane outputs.
                    session.flush(&mut self.module, &mut |tag, out| {
                        emit(ShardOut::Out(tag, out))
                    });
                    session.offer_with_key(&mut self.module, seq, pkt, key, &mut |_, _| {});
                }
                false
            }
            ShardMsg::Barrier { upto } => {
                session.flush(&mut self.module, &mut |tag, out| {
                    emit(ShardOut::Out(tag, out))
                });
                emit(ShardOut::Watermark(upto));
                false
            }
            ShardMsg::Eof => {
                let session = self.session.take().expect("double Eof");
                let report = session.finish(&mut self.module, &mut |tag, out| {
                    emit(ShardOut::Out(tag, out))
                });
                let snapshot = self.module.telemetry_snapshot();
                emit(ShardOut::Done(Box::new(ShardDone { report, snapshot })));
                true
            }
        }
    }
}

/// The departure-order reconciler: buffers tagged shard outputs and
/// releases them in global input order, gated by per-shard watermarks.
///
/// Invariant: an output with sequence `s` is released only once every
/// shard's watermark exceeds `s` — i.e. every shard has flushed
/// everything it will ever emit at or below `s`, and (because each
/// ring is FIFO and the watermark token follows the outputs it covers)
/// those outputs are already buffered. Release order is therefore
/// strictly ascending in `s`, independent of thread timing: exactly
/// the serial sink order.
///
/// Sequences are unique (each input emits at most one output), so the
/// buffer is a sequence-indexed sliding window over `[base, base+len)`
/// rather than a heap: accepting an output is one slot write, each
/// release is one pop — O(1) per packet where the former
/// `BinaryHeap` paid O(log window) twice.
struct Reconciler {
    /// Slot `i` holds the output for sequence `base + i`, if any.
    window: VecDeque<Option<OutputPacket>>,
    /// Sequence number of `window[0]`; everything below is released.
    base: u64,
    /// Per shard: all outputs with sequence < `watermarks[i]` are final.
    watermarks: Vec<u64>,
    results: Vec<Option<ShardDone>>,
    done: usize,
}

impl Reconciler {
    fn new(shards: usize) -> Reconciler {
        Reconciler {
            window: VecDeque::new(),
            base: 0,
            watermarks: vec![0; shards],
            results: (0..shards).map(|_| None).collect(),
            done: 0,
        }
    }

    fn accept(&mut self, shard: usize, msg: ShardOut, sink: &mut impl FnMut(OutputPacket)) {
        match msg {
            ShardOut::Out(seq, out) => {
                assert!(seq >= self.base, "output arrived after its release point");
                let idx = (seq - self.base) as usize;
                if idx == self.window.len() {
                    // In-order arrival — the overwhelmingly common case
                    // (inline transport: every packet): append directly
                    // instead of growing through resize_with.
                    self.window.push_back(Some(out));
                } else {
                    if self.window.len() <= idx {
                        self.window.resize_with(idx + 1, || None);
                    }
                    self.window[idx] = Some(out);
                }
            }
            ShardOut::Watermark(upto) => {
                self.watermarks[shard] = self.watermarks[shard].max(upto + 1);
                self.release(sink);
            }
            ShardOut::Done(d) => {
                self.watermarks[shard] = u64::MAX;
                self.results[shard] = Some(*d);
                self.done += 1;
                self.release(sink);
            }
        }
    }

    fn release(&mut self, sink: &mut impl FnMut(OutputPacket)) {
        let floor = *self.watermarks.iter().min().expect("at least one shard");
        while self.base < floor {
            match self.window.pop_front() {
                Some(Some(out)) => sink(out),
                // A sequence that produced no output (drop, or an
                // input consumed by another path): slot stays empty.
                Some(None) => {}
                // Window exhausted: everything below the floor that
                // will ever exist has been released.
                None => {
                    self.base = floor;
                    return;
                }
            }
            self.base += 1;
        }
    }
}

/// Dispatcher-side accounting, merged into the final report.
#[derive(Default)]
struct DispatchStats {
    offered: u64,
    offered_bytes: u64,
    unsorted: u64,
    last_arrival_ns: u64,
    backpressure: u64,
    routed: Vec<u64>,
    frame_copies: u64,
    chunk_allocs: u64,
}

/// How messages reach shards and outputs come back. Two
/// implementations: worker threads over SPSC rings, or inline
/// execution on the dispatcher thread (single shard, or parallelism
/// clamped by nesting / `FLEXSFP_THREADS=1`). The dispatch loop and
/// reconciler are shared, so both produce identical output streams.
trait Transport<F: FnMut(OutputPacket)> {
    /// Queue `msg` for `shard`. May buffer; order per shard is
    /// preserved.
    fn send(
        &mut self,
        shard: usize,
        msg: ShardMsg,
        recon: &mut Reconciler,
        sink: &mut F,
        stats: &mut DispatchStats,
    );
    /// Push every buffered chunk out now (barrier/Eof points).
    fn flush(&mut self, recon: &mut Reconciler, sink: &mut F, stats: &mut DispatchStats);
    /// Nonblocking drain of shard outputs into the reconciler.
    fn poll(&mut self, recon: &mut Reconciler, sink: &mut F);
    /// Block (yielding) until every shard has reported Done.
    fn wait_done(&mut self, recon: &mut Reconciler, sink: &mut F);
    /// Global-sequence distance between flush barriers. Barriers are
    /// digest-neutral (a flush drains pending outputs in admission
    /// order, it never reorders or retimes them), so each transport
    /// picks the cadence that suits its cost model.
    fn barrier_every(&self) -> u64;
}

/// Inline transport: engines live on the dispatcher thread and handle
/// every message synchronously. The degenerate one-core case — and the
/// reference the threaded path is digest-compared against in tests.
struct InlineTransport {
    engines: Vec<ShardEngine>,
}

impl<F: FnMut(OutputPacket)> Transport<F> for InlineTransport {
    fn send(
        &mut self,
        shard: usize,
        msg: ShardMsg,
        recon: &mut Reconciler,
        sink: &mut F,
        _stats: &mut DispatchStats,
    ) {
        self.engines[shard].handle(msg, &mut |out| recon.accept(shard, out, sink));
    }

    fn flush(&mut self, _recon: &mut Reconciler, _sink: &mut F, _stats: &mut DispatchStats) {}
    fn poll(&mut self, _recon: &mut Reconciler, _sink: &mut F) {}
    fn wait_done(&mut self, _recon: &mut Reconciler, _sink: &mut F) {}
    fn barrier_every(&self) -> u64 {
        INLINE_BARRIER_EVERY
    }
}

/// Threaded transport: one worker thread per shard, batched SPSC item
/// rings both ways. Staging buffers are allocated once per shard and
/// drained in place by `push_slice`, so the steady state performs no
/// chunk allocation at all (`chunk_allocs` counts the setup buffers).
struct ThreadedTransport {
    to_shard: Vec<Producer<ShardMsg>>,
    from_shard: Vec<Consumer<ShardOut>>,
    /// Per-shard persistent staging for outgoing messages.
    staged: Vec<Vec<ShardMsg>>,
    /// Persistent scratch for draining shard outputs.
    inbox: Vec<ShardOut>,
}

impl ThreadedTransport {
    fn push_staged<F: FnMut(OutputPacket)>(
        &mut self,
        shard: usize,
        recon: &mut Reconciler,
        sink: &mut F,
        stats: &mut DispatchStats,
    ) {
        let mut stalled = false;
        while !self.staged[shard].is_empty() {
            if self.to_shard[shard].push_slice(&mut self.staged[shard]) == 0 {
                // Backpressure: the shard's ring is full. Drain
                // outputs so workers (and the reconciler) make
                // progress, then retry.
                if !stalled {
                    stats.backpressure += 1;
                    stalled = true;
                }
                self.drain(recon, sink);
                std::thread::yield_now();
            }
        }
    }

    fn drain<F: FnMut(OutputPacket)>(&mut self, recon: &mut Reconciler, sink: &mut F) {
        let ThreadedTransport {
            from_shard, inbox, ..
        } = self;
        for (shard, rx) in from_shard.iter_mut().enumerate() {
            while rx.pop_chunk(inbox, CHUNK) > 0 {
                for out in inbox.drain(..) {
                    recon.accept(shard, out, sink);
                }
            }
        }
    }
}

impl<F: FnMut(OutputPacket)> Transport<F> for ThreadedTransport {
    fn send(
        &mut self,
        shard: usize,
        msg: ShardMsg,
        recon: &mut Reconciler,
        sink: &mut F,
        stats: &mut DispatchStats,
    ) {
        self.staged[shard].push(msg);
        if self.staged[shard].len() >= CHUNK {
            self.push_staged(shard, recon, sink, stats);
        }
    }

    fn flush(&mut self, recon: &mut Reconciler, sink: &mut F, stats: &mut DispatchStats) {
        for shard in 0..self.staged.len() {
            self.push_staged(shard, recon, sink, stats);
        }
    }

    fn poll(&mut self, recon: &mut Reconciler, sink: &mut F) {
        self.drain(recon, sink);
    }

    fn wait_done(&mut self, recon: &mut Reconciler, sink: &mut F) {
        while recon.done < recon.results.len() {
            self.drain(recon, sink);
            std::thread::yield_now();
        }
    }

    fn barrier_every(&self) -> u64 {
        BARRIER_EVERY
    }
}

/// The dispatch loop shared by all transports: account, enforce
/// global arrival order, extract each frame's key once, classify
/// control frames (broadcast) vs dataplane (flow-hash from the key),
/// and punctuate with flush barriers.
fn drive<I, F, T>(
    packets: I,
    shards: usize,
    classifier: &ControlPlane,
    copies: &SharedPacketArena,
    transport: &mut T,
    recon: &mut Reconciler,
    sink: &mut F,
) -> DispatchStats
where
    I: IntoIterator<Item = SimPacket>,
    F: FnMut(OutputPacket),
    T: Transport<F>,
{
    let mut stats = DispatchStats {
        routed: vec![0; shards],
        ..DispatchStats::default()
    };
    let mut seq = 0u64;
    let mut prev_arrival = 0u64;
    let barrier_every = transport.barrier_every();
    // Countdown instead of `seq % barrier_every`: the cadence is a
    // runtime value, and a u64 division per packet is real money at
    // ~100 ns/packet budgets.
    let mut until_barrier = barrier_every;
    for pkt in packets {
        stats.offered += 1;
        stats.offered_bytes += pkt.frame.len() as u64;
        if pkt.arrival_ns < prev_arrival {
            // The serial path drops globally-unsorted stragglers; the
            // dispatcher must enforce the same *global* order — shard
            // subsequences of an unsorted trace could each look sorted.
            stats.unsorted += 1;
            continue;
        }
        prev_arrival = pkt.arrival_ns;
        stats.last_arrival_ns = stats.last_arrival_ns.max(pkt.arrival_ns);

        // THE shallow parse: one key extraction feeds the control
        // filter, the shard hash, and (carried as a hint) the shard's
        // microflow cache.
        let key = KeyHint::compute(&pkt.frame, pkt.direction);
        let maybe_control = match key {
            KeyHint::Key(k) => classifier.may_classify(&k),
            _ => true,
        };
        let is_control = pkt.direction == Direction::EdgeToOptical
            && maybe_control
            && classifier.classify(&pkt.frame);
        if is_control {
            // Broadcast: every shard must replay the mutation in
            // stream position. Shard 0 answers; replicas suppress.
            // The original frame moves to the last shard; the other
            // copies are the pipeline's only frame copies, leased
            // from the shared arena and accounted.
            stats.frame_copies += shards as u64 - 1;
            for shard in 0..shards - 1 {
                let dup = SimPacket {
                    arrival_ns: pkt.arrival_ns,
                    direction: pkt.direction,
                    frame: copies.lease_copy(&pkt.frame),
                };
                transport.send(
                    shard,
                    ShardMsg::Control { seq, pkt: dup, key },
                    recon,
                    sink,
                    &mut stats,
                );
            }
            transport.send(
                shards - 1,
                ShardMsg::Control { seq, pkt, key },
                recon,
                sink,
                &mut stats,
            );
        } else {
            let shard = match key {
                KeyHint::Key(k) => shard_index(hash_of_key(&k), shards),
                _ => shard_index(slow_flow_hash(&pkt.frame), shards),
            };
            stats.routed[shard] += 1;
            transport.send(
                shard,
                ShardMsg::Packet { seq, pkt, key },
                recon,
                sink,
                &mut stats,
            );
        }
        seq += 1;
        until_barrier -= 1;
        if until_barrier == 0 {
            until_barrier = barrier_every;
            for shard in 0..shards {
                transport.send(
                    shard,
                    ShardMsg::Barrier { upto: seq - 1 },
                    recon,
                    sink,
                    &mut stats,
                );
            }
            transport.flush(recon, sink, &mut stats);
        }
        transport.poll(recon, sink);
    }
    for shard in 0..shards {
        transport.send(shard, ShardMsg::Eof, recon, sink, &mut stats);
    }
    transport.flush(recon, sink, &mut stats);
    transport.wait_done(recon, sink);
    stats
}

/// Result of a sharded run: the merged report and telemetry, plus
/// dispatch-layer accounting.
pub struct ShardedRun {
    /// Aggregate simulation report, field-for-field comparable to the
    /// serial [`FlexSfp::run_stream`] report (outputs not retained).
    pub report: SimReport,
    /// Merged telemetry snapshot across all shard modules.
    pub snapshot: TelemetrySnapshot,
    /// Number of shards the run used.
    pub shards: usize,
    /// Dispatcher stall episodes on full shard rings (backpressure).
    pub backpressure: u64,
    /// Dataplane packets routed per shard (control broadcasts excluded).
    pub routed: Vec<u64>,
    /// Frame copies made anywhere in the pipeline. Only control-frame
    /// broadcasts copy (shards−1 copies each); dataplane frames move
    /// from dispatcher to shard to reconciler, so a workload without
    /// control frames shows 0 — the zero-copy witness.
    pub frame_copies: u64,
    /// Message-buffer allocations for ring staging over the whole run.
    /// Buffers persist and are drained in place, so this is O(shards)
    /// regardless of trace length (0 on the inline transport).
    pub chunk_allocs: u64,
}

/// Run one packet stream across `shards` module instances and emit
/// every output, in exactly the serial `run_stream_with` sink order,
/// to `sink`.
///
/// `make_module` is called once per shard (on the worker thread that
/// owns the shard) and must build modules with the same `config` the
/// dispatcher classifies control frames with — shards are replicas of
/// one logical module, not distinct devices.
///
/// With one shard, with `FLEXSFP_THREADS=1`, or when invoked from
/// inside another parallel region (a `par_map` sweep point or another
/// sharded run), everything runs inline on the calling thread — same
/// engines, same reconciler, byte-identical output — instead of
/// oversubscribing the host.
pub fn run_sharded<I, M, F>(
    shards: usize,
    config: &ModuleConfig,
    make_module: M,
    packets: I,
    mut sink: F,
) -> ShardedRun
where
    I: IntoIterator<Item = SimPacket>,
    M: Fn(usize) -> FlexSfp + Send + Sync,
    F: FnMut(OutputPacket),
{
    let shards = shards.max(1);
    let classifier = ControlPlane::new(config.mgmt_mac, config.mgmt_ip, config.auth_key);
    let copies = SharedPacketArena::new();
    let mut recon = Reconciler::new(shards);

    let stats = if shards == 1 || par::effective_parallelism() == 1 {
        let mut transport = InlineTransport {
            engines: (0..shards)
                .map(|i| ShardEngine::new(make_module(i), i == 0))
                .collect(),
        };
        drive(
            packets,
            shards,
            &classifier,
            &copies,
            &mut transport,
            &mut recon,
            &mut sink,
        )
    } else {
        // Worker threads + rings. Register the region so nested
        // parallel work (a sweep inside an app, another sharded run)
        // clamps to one thread instead of multiplying.
        let _region = par::RegionGuard::enter();
        let chunk_allocs = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let mut to_shard = Vec::with_capacity(shards);
            let mut from_shard = Vec::with_capacity(shards);
            for i in 0..shards {
                let (msg_tx, msg_rx) = channel::<ShardMsg>(RING_ITEMS);
                let (out_tx, out_rx) = channel::<ShardOut>(RING_ITEMS);
                to_shard.push(msg_tx);
                from_shard.push(out_rx);
                let make_module = &make_module;
                let allocs = Arc::clone(&chunk_allocs);
                scope.spawn(move || {
                    worker_loop(
                        ShardEngine::new(make_module(i), i == 0),
                        msg_rx,
                        out_tx,
                        &allocs,
                    )
                });
            }
            // Dispatcher-side buffers: one staging vec per shard plus
            // the shared drain scratch.
            chunk_allocs.fetch_add(shards as u64 + 1, Ordering::Relaxed);
            let mut transport = ThreadedTransport {
                to_shard,
                from_shard,
                staged: (0..shards).map(|_| Vec::with_capacity(CHUNK)).collect(),
                inbox: Vec::with_capacity(CHUNK),
            };
            let mut stats = drive(
                packets,
                shards,
                &classifier,
                &copies,
                &mut transport,
                &mut recon,
                &mut sink,
            );
            stats.chunk_allocs = chunk_allocs.load(Ordering::Relaxed);
            stats
        })
    };

    merge(stats, recon, shards)
}

/// The worker side of the threaded transport: pop message batches,
/// handle them, push output batches — all through persistent buffers
/// and the ring's batched ops, so the worker performs no per-packet
/// allocation and one atomic position publish per chunk. Outputs
/// buffer up to [`CHUNK`] deep but always flush at barriers and Eof,
/// so watermark latency is bounded by the barrier cadence.
fn worker_loop(
    mut engine: ShardEngine,
    mut rx: Consumer<ShardMsg>,
    mut tx: Producer<ShardOut>,
    allocs: &AtomicU64,
) {
    // The worker's two persistent buffers (counted for the O(shards)
    // chunk-allocation witness).
    allocs.fetch_add(2, Ordering::Relaxed);
    let mut inbox: Vec<ShardMsg> = Vec::with_capacity(CHUNK);
    let mut outbuf: Vec<ShardOut> = Vec::with_capacity(2 * CHUNK);
    loop {
        if rx.pop_chunk(&mut inbox, CHUNK) == 0 {
            std::thread::yield_now();
            continue;
        }
        for msg in inbox.drain(..) {
            let flush_now = matches!(msg, ShardMsg::Barrier { .. } | ShardMsg::Eof);
            let done = engine.handle(msg, &mut |out| outbuf.push(out));
            if outbuf.len() >= CHUNK || (flush_now && !outbuf.is_empty()) {
                while !outbuf.is_empty() {
                    if tx.push_slice(&mut outbuf) == 0 {
                        std::thread::yield_now();
                    }
                }
            }
            if done {
                return;
            }
        }
    }
}

/// Merge the dispatcher's accounting and every shard's report and
/// snapshot into the aggregate view.
fn merge(stats: DispatchStats, recon: Reconciler, shards: usize) -> ShardedRun {
    let results: Vec<ShardDone> = recon
        .results
        .into_iter()
        .map(|r| r.expect("every shard reported Done"))
        .collect();
    let mut report = SimReport {
        // Input accounting comes from the dispatcher: control
        // broadcasts reach every shard and would count `offered` once
        // per shard. Unsorted stragglers never reach a shard at all.
        offered: stats.offered,
        offered_bytes: stats.offered_bytes,
        duration_ns: stats.last_arrival_ns,
        ..SimReport::default()
    };
    report.drops.unsorted = stats.unsorted;
    let mut snapshot: Option<TelemetrySnapshot> = None;
    for (i, shard) in results.iter().enumerate() {
        let r = &shard.report;
        report.forwarded.0 += r.forwarded.0;
        report.forwarded.1 += r.forwarded.1;
        report.forwarded_bytes += r.forwarded_bytes;
        report.drops.fifo_overflow += r.drops.fifo_overflow;
        report.drops.app += r.drops.app;
        report.drops.link += r.drops.link;
        report.to_control += r.to_control;
        report.cp_originated += r.cp_originated;
        if i == 0 {
            // The primary alone answers control frames; replicas
            // handled the same frames but their counts are duplicates.
            report.control_handled = r.control_handled;
        }
        report.latency.merge(&r.latency);
        report.duration_ns = report.duration_ns.max(r.duration_ns);
        match snapshot.as_mut() {
            None => snapshot = Some(shard.snapshot.clone()),
            Some(s) => s.merge_shard(&shard.snapshot),
        }
    }
    ShardedRun {
        report,
        snapshot: snapshot.expect("at least one shard"),
        shards,
        backpressure: stats.backpressure,
        routed: stats.routed,
        frame_copies: stats.frame_copies,
        chunk_allocs: stats.chunk_allocs,
    }
}

/// Wall-clock attribution of a sharded run across the four pipeline
/// stages, from [`run_sharded_timed`]. Nanoseconds, summed over the
/// whole run; divide by the packet count for per-packet figures.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageNanos {
    /// Dispatcher: accounting, the fused key extraction, control
    /// classification and shard routing.
    pub dispatch_ns: u64,
    /// Ring transport: batched `push_slice`/`pop_chunk` message moves.
    pub ring_ns: u64,
    /// Shard engines: `StreamSession` offers, PPE batches, flushes.
    pub shard_ns: u64,
    /// Reconciler: window insert + ordered release to the sink.
    pub reconcile_ns: u64,
}

/// A transport that runs the engines synchronously but routes every
/// message through real SPSC rings, timing each stage as it goes: the
/// measurement rig behind [`run_sharded_timed`]. Ring costs are the
/// true batched-ring costs (same ops the threaded transport issues),
/// just without a second thread racing on them.
struct TimedTransport {
    engines: Vec<ShardEngine>,
    rings: Vec<(Producer<ShardMsg>, Consumer<ShardMsg>)>,
    staged: Vec<Vec<ShardMsg>>,
    inbox: Vec<ShardMsg>,
    outbuf: Vec<ShardOut>,
    ring_ns: u64,
    shard_ns: u64,
    reconcile_ns: u64,
}

impl TimedTransport {
    fn new(engines: Vec<ShardEngine>) -> TimedTransport {
        let shards = engines.len();
        TimedTransport {
            engines,
            rings: (0..shards).map(|_| channel(RING_ITEMS)).collect(),
            staged: (0..shards).map(|_| Vec::with_capacity(CHUNK)).collect(),
            inbox: Vec::with_capacity(CHUNK),
            outbuf: Vec::with_capacity(2 * CHUNK),
            ring_ns: 0,
            shard_ns: 0,
            reconcile_ns: 0,
        }
    }

    fn pump<F: FnMut(OutputPacket)>(&mut self, shard: usize, recon: &mut Reconciler, sink: &mut F) {
        if self.staged[shard].is_empty() {
            return;
        }
        // Ring stage: the staged batch crosses a real ring.
        let t0 = Instant::now();
        let (tx, rx) = &mut self.rings[shard];
        while !self.staged[shard].is_empty() {
            tx.push_slice(&mut self.staged[shard]);
        }
        while rx.pop_chunk(&mut self.inbox, RING_ITEMS) > 0 {}
        let t1 = Instant::now();
        // Shard stage: the engine consumes the batch.
        let engine = &mut self.engines[shard];
        let outbuf = &mut self.outbuf;
        for msg in self.inbox.drain(..) {
            engine.handle(msg, &mut |out| outbuf.push(out));
        }
        let t2 = Instant::now();
        // Reconcile stage: outputs enter the ordering window.
        for out in self.outbuf.drain(..) {
            recon.accept(shard, out, sink);
        }
        let t3 = Instant::now();
        self.ring_ns += (t1 - t0).as_nanos() as u64;
        self.shard_ns += (t2 - t1).as_nanos() as u64;
        self.reconcile_ns += (t3 - t2).as_nanos() as u64;
    }
}

impl<F: FnMut(OutputPacket)> Transport<F> for TimedTransport {
    fn send(
        &mut self,
        shard: usize,
        msg: ShardMsg,
        recon: &mut Reconciler,
        sink: &mut F,
        _stats: &mut DispatchStats,
    ) {
        self.staged[shard].push(msg);
        if self.staged[shard].len() >= CHUNK {
            self.pump(shard, recon, sink);
        }
    }

    fn flush(&mut self, recon: &mut Reconciler, sink: &mut F, _stats: &mut DispatchStats) {
        for shard in 0..self.staged.len() {
            self.pump(shard, recon, sink);
        }
    }

    fn poll(&mut self, _recon: &mut Reconciler, _sink: &mut F) {}
    fn wait_done(&mut self, _recon: &mut Reconciler, _sink: &mut F) {}
    fn barrier_every(&self) -> u64 {
        INLINE_BARRIER_EVERY
    }
}

/// [`run_sharded`] with per-stage wall-clock attribution, on one
/// thread: engines run synchronously (like the inline transport), but
/// every message crosses a real batched SPSC ring so the ring stage is
/// measured with the ops the threaded transport actually issues. The
/// output stream is digest-identical to both the serial and the
/// sharded paths — the instrumented pipeline is the real pipeline with
/// clocks between stages, not a model of it.
pub fn run_sharded_timed<I, M, F>(
    shards: usize,
    config: &ModuleConfig,
    make_module: M,
    packets: I,
    mut sink: F,
) -> (ShardedRun, StageNanos)
where
    I: IntoIterator<Item = SimPacket>,
    M: Fn(usize) -> FlexSfp,
    F: FnMut(OutputPacket),
{
    let shards = shards.max(1);
    let classifier = ControlPlane::new(config.mgmt_mac, config.mgmt_ip, config.auth_key);
    let copies = SharedPacketArena::new();
    let mut recon = Reconciler::new(shards);
    let mut transport = TimedTransport::new(
        (0..shards)
            .map(|i| ShardEngine::new(make_module(i), i == 0))
            .collect(),
    );
    let t0 = Instant::now();
    let mut stats = drive(
        packets,
        shards,
        &classifier,
        &copies,
        &mut transport,
        &mut recon,
        &mut sink,
    );
    let total_ns = t0.elapsed().as_nanos() as u64;
    stats.chunk_allocs = shards as u64 + 2;
    let stage = StageNanos {
        dispatch_ns: total_ns
            .saturating_sub(transport.ring_ns)
            .saturating_sub(transport.shard_ns)
            .saturating_sub(transport.reconcile_ns),
        ring_ns: transport.ring_ns,
        shard_ns: transport.shard_ns,
        reconcile_ns: transport.reconcile_ns,
    };
    (merge(stats, recon, shards), stage)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal Ethernet/IPv4/UDP frame with the given 5-tuple, padded
    /// with `extra` payload bytes.
    fn udp_frame(src: u32, dst: u32, sport: u16, dport: u16, extra: usize) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]); // dst MAC
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]); // src MAC
        f.extend_from_slice(&0x0800u16.to_be_bytes());
        let ip_len = 20 + 8 + extra;
        f.push(0x45); // v4, IHL 5
        f.push(0);
        f.extend_from_slice(&(ip_len as u16).to_be_bytes());
        f.extend_from_slice(&[0, 0, 0, 0]); // id, flags/frag
        f.push(64); // TTL
        f.push(17); // UDP
        f.extend_from_slice(&[0, 0]); // checksum (unchecked here)
        f.extend_from_slice(&src.to_be_bytes());
        f.extend_from_slice(&dst.to_be_bytes());
        f.extend_from_slice(&sport.to_be_bytes());
        f.extend_from_slice(&dport.to_be_bytes());
        f.extend_from_slice(&((8 + extra) as u16).to_be_bytes());
        f.extend_from_slice(&[0, 0]); // UDP checksum
        f.extend(std::iter::repeat_n(0xabu8, extra));
        f
    }

    /// Minimal Ethernet/IPv4/TCP frame with a configurable data offset.
    fn tcp_frame(
        src: u32,
        dst: u32,
        sport: u16,
        dport: u16,
        doff_words: u8,
        extra: usize,
    ) -> Vec<u8> {
        let tcp_len = 20 + extra;
        let mut f = Vec::new();
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
        f.extend_from_slice(&0x0800u16.to_be_bytes());
        f.push(0x45);
        f.push(0);
        f.extend_from_slice(&((20 + tcp_len) as u16).to_be_bytes());
        f.extend_from_slice(&[0, 0, 0, 0]);
        f.push(64);
        f.push(6); // TCP
        f.extend_from_slice(&[0, 0]);
        f.extend_from_slice(&src.to_be_bytes());
        f.extend_from_slice(&dst.to_be_bytes());
        f.extend_from_slice(&sport.to_be_bytes());
        f.extend_from_slice(&dport.to_be_bytes());
        f.extend_from_slice(&[0, 0, 0, 0]); // seq
        f.extend_from_slice(&[0, 0, 0, 0]); // ack
        f.push(doff_words << 4);
        f.push(0x10); // flags
        f.extend_from_slice(&[0xff, 0xff, 0, 0, 0, 0]); // win, csum, urg
        f.extend(std::iter::repeat_n(0xcdu8, extra));
        f
    }

    /// Wrap a frame's L3 in `n` VLAN tags (innermost first ethertype
    /// preserved).
    fn with_tags(frame: &[u8], tags: &[(u16, u16)]) -> Vec<u8> {
        let mut f = frame[0..12].to_vec();
        for &(tpid, tci) in tags {
            f.extend_from_slice(&tpid.to_be_bytes());
            f.extend_from_slice(&tci.to_be_bytes());
        }
        f.extend_from_slice(&frame[12..]); // original ethertype onward
        f
    }

    /// Minimal IPv6 frame: optional extension-header chain, then an
    /// upper-layer header starting with the given 4 port bytes.
    fn ipv6_frame(
        src_last: u8,
        dst_last: u8,
        exts: &[(u8, usize)],
        last_nh: u8,
        l4: &[u8],
    ) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
        f.extend_from_slice(&0x86ddu16.to_be_bytes());
        let mut body = Vec::new();
        // Extension headers, each (next_header, total_len_in_8s - 1).
        for (i, &(_nh, len8)) in exts.iter().enumerate() {
            let next = if i + 1 < exts.len() {
                exts[i + 1].0
            } else {
                last_nh
            };
            body.push(next);
            body.push((len8 - 1) as u8);
            body.extend(std::iter::repeat_n(0u8, len8 * 8 - 2));
        }
        body.extend_from_slice(l4);
        f.push(0x60); // version 6
        f.extend_from_slice(&[0, 0, 0]);
        f.extend_from_slice(&(body.len() as u16).to_be_bytes());
        f.push(exts.first().map(|e| e.0).unwrap_or(last_nh));
        f.push(64); // hop limit
        let mut src = [0u8; 16];
        src[15] = src_last;
        let mut dst = [0u8; 16];
        dst[15] = dst_last;
        f.extend_from_slice(&src);
        f.extend_from_slice(&dst);
        f.extend_from_slice(&body);
        f
    }

    #[test]
    fn hash_is_flow_stable_and_spreads() {
        // Same 5-tuple → same shard, regardless of payload length.
        let mut a = udp_frame(0xc0a8_0001, 0x6540_0001, 1111, 53, 10);
        let b = udp_frame(0xc0a8_0001, 0x6540_0001, 1111, 53, 700);
        assert_eq!(shard_for(&a, 8), shard_for(&b, 8));
        // Different flows spread: 64 flows over 8 shards must touch
        // more than one shard.
        let shards: std::collections::HashSet<usize> = (0..64u32)
            .map(|i| shard_for(&udp_frame(0xc0a8_0000 + i, 0x6540_0001, 1024, 53, 10), 8))
            .collect();
        assert!(shards.len() > 1, "all flows landed on one shard");
        // Truncated runts fall back to the MAC hash instead of
        // panicking; so does the empty frame.
        a.truncate(10);
        let _ = shard_for(&a, 4);
        let _ = shard_for(&[], 4);
    }

    #[test]
    fn vlan_tag_is_transparent_to_the_flow_hash() {
        let plain = udp_frame(0xc0a8_0001, 0x6540_0001, 4242, 80, 10);
        let tagged = with_tags(&plain, &[(0x8100, 0x2001)]);
        assert_eq!(flow_hash(&plain), flow_hash(&tagged));
    }

    #[test]
    fn qinq_double_tag_is_transparent_to_the_flow_hash() {
        let plain = udp_frame(0xc0a8_0001, 0x6540_0001, 4242, 80, 10);
        let qinq = with_tags(&plain, &[(0x88a8, 0x0064), (0x8100, 0x2001)]);
        assert_eq!(flow_hash(&plain), flow_hash(&qinq));
        // The double-tagged frame still has a key (≤ 2 tags), so the
        // fused path covers it; a triple stack falls to the slow path
        // without panicking.
        assert!(FlowKey::extract(&qinq, Direction::EdgeToOptical).is_some());
        let triple = with_tags(
            &plain,
            &[(0x88a8, 0x0064), (0x8100, 0x2001), (0x8100, 0x2002)],
        );
        assert!(FlowKey::extract(&triple, Direction::EdgeToOptical).is_none());
        let _ = flow_hash(&triple);
    }

    #[test]
    fn ipv6_extension_chain_walks_to_the_ports() {
        let ports = [0x12u8, 0x34, 0x56, 0x78, 0, 0, 0, 0];
        // Direct TCP vs hop-by-hop → dst-opts → TCP: same flow tuple,
        // same hash — extension headers are transparent.
        let direct = ipv6_frame(1, 2, &[], 6, &ports);
        let chained = ipv6_frame(1, 2, &[(0, 1), (60, 2)], 6, &ports);
        assert_eq!(flow_hash(&direct), flow_hash(&chained));
        // Different ports, different hash (ports are in the tuple).
        let other = ipv6_frame(1, 2, &[], 6, &[0x12, 0x34, 0x56, 0x79, 0, 0, 0, 0]);
        assert_ne!(flow_hash(&direct), flow_hash(&other));
        // A fragment header hides the ports: both port variants hash
        // to the address pair.
        let frag_a = ipv6_frame(1, 2, &[(44, 1)], 6, &ports);
        let frag_b = ipv6_frame(1, 2, &[(44, 1)], 6, &[9, 9, 9, 9, 0, 0, 0, 0]);
        assert_eq!(flow_hash(&frag_a), flow_hash(&frag_b));
        // A truncated extension chain degrades to the address hash
        // deterministically.
        let mut trunc = chained.clone();
        trunc.truncate(14 + 40 + 4);
        assert_eq!(flow_hash(&trunc), flow_hash(&trunc));
    }

    /// The fused-path oracle: wherever the key extracts, hashing the
    /// key must equal the full shallow parse — over valid frames, L4
    /// validity edge cases, fragments, tags, and every truncation.
    #[test]
    fn fused_and_slow_flow_hash_agree() {
        let mut corpus: Vec<Vec<u8>> = Vec::new();
        let base = udp_frame(0xc0a8_0001, 0x6540_0001, 4242, 80, 24);
        corpus.push(base.clone());
        corpus.push(tcp_frame(0xc0a8_0001, 0x6540_0001, 321, 443, 5, 4));
        corpus.push(tcp_frame(0xc0a8_0001, 0x6540_0001, 321, 443, 8, 16)); // options
        corpus.push(tcp_frame(0xc0a8_0001, 0x6540_0001, 321, 443, 4, 0)); // doff < 20: invalid
        corpus.push(tcp_frame(0xc0a8_0001, 0x6540_0001, 321, 443, 15, 0)); // doff > payload
        corpus.push(with_tags(&base, &[(0x8100, 0x2001)]));
        corpus.push(with_tags(&base, &[(0x88a8, 0x0064), (0x8100, 0x2001)]));
        // Fragments: first (MF set) and non-first (offset != 0).
        let mut mf = base.clone();
        mf[20] = 0x20;
        corpus.push(mf);
        let mut offset_frag = base.clone();
        offset_frag[20] = 0x00;
        offset_frag[21] = 0x10;
        corpus.push(offset_frag);
        // UDP length field shorter than payload / longer than payload.
        let mut short_ulen = base.clone();
        short_ulen[39] = 8;
        corpus.push(short_ulen);
        let mut long_ulen = base.clone();
        long_ulen[38] = 0xff;
        corpus.push(long_ulen);
        // Non-IP, IPv6, garbage.
        let mut arp = base.clone();
        arp[12] = 0x08;
        arp[13] = 0x06;
        corpus.push(arp);
        corpus.push(ipv6_frame(1, 2, &[], 17, &[0, 53, 0, 53, 0, 8, 0, 0]));
        corpus.push(vec![0xff; 64]);
        // Every truncation of every corpus frame, plus seeded random
        // byte mutations: the property must hold over malformed
        // inputs, not just well-formed ones.
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for f in &corpus {
            for cut in 0..=f.len() {
                frames.push(f[..cut].to_vec());
            }
        }
        use flexsfp_traffic::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(0x5eed);
        for _ in 0..2_000 {
            let mut f = corpus[(rng.next_u64() as usize) % corpus.len()].clone();
            for _ in 0..1 + rng.next_u64() % 4 {
                let i = (rng.next_u64() as usize) % f.len();
                f[i] = rng.next_u64() as u8;
            }
            frames.push(f);
        }
        for f in &frames {
            assert_eq!(flow_hash(f), flow_hash(f), "hash must be deterministic");
            if let Some(key) = FlowKey::extract(f, Direction::EdgeToOptical) {
                assert_eq!(
                    hash_of_key(&key),
                    slow_flow_hash(f),
                    "fused and slow parse diverged on {f:02x?}"
                );
            }
        }
    }

    #[test]
    fn reconciler_releases_in_seq_order_behind_watermarks() {
        let out = |departure_ns: u64| OutputPacket {
            departure_ns,
            egress: flexsfp_core::Interface::Optical,
            frame: vec![],
            latency_ns: 0.0,
        };
        let mut r = Reconciler::new(2);
        let mut got: Vec<u64> = Vec::new();
        // Outputs arrive out of order across shards; nothing may be
        // released before both shards' watermarks pass it.
        r.accept(0, ShardOut::Out(3, out(3)), &mut |o| {
            got.push(o.departure_ns)
        });
        r.accept(1, ShardOut::Out(1, out(1)), &mut |o| {
            got.push(o.departure_ns)
        });
        r.accept(0, ShardOut::Watermark(5), &mut |o| got.push(o.departure_ns));
        assert!(got.is_empty(), "released past shard 1's watermark");
        r.accept(1, ShardOut::Out(0, out(0)), &mut |o| {
            got.push(o.departure_ns)
        });
        r.accept(1, ShardOut::Watermark(2), &mut |o| got.push(o.departure_ns));
        assert_eq!(got, vec![0, 1], "seq ≤ 2 released in order, 3 held");
        r.accept(1, ShardOut::Watermark(5), &mut |o| got.push(o.departure_ns));
        assert_eq!(got, vec![0, 1, 3]);
    }

    #[test]
    fn reconciler_window_slides_without_unbounded_growth() {
        let out = |seq: u64| OutputPacket {
            departure_ns: seq,
            egress: flexsfp_core::Interface::Optical,
            frame: vec![],
            latency_ns: 0.0,
        };
        let mut r = Reconciler::new(1);
        let mut got = 0u64;
        // Stream 10k outputs with a watermark every 64: the window
        // must stay at one barrier interval, not the whole stream.
        for seq in 0..10_000u64 {
            r.accept(0, ShardOut::Out(seq, out(seq)), &mut |_| {});
            if (seq + 1) % 64 == 0 {
                r.accept(0, ShardOut::Watermark(seq), &mut |o| {
                    assert_eq!(o.departure_ns, got);
                    got += 1;
                });
                assert!(r.window.len() <= 64, "window grew: {}", r.window.len());
            }
        }
        assert_eq!(got, 9_984);
    }
}
