//! # flexsfp-bench
//!
//! The experiment harness. Every table and figure of the paper's
//! evaluation has a module here that regenerates it from the models in
//! the rest of the workspace:
//!
//! | Paper artifact | Module | CLI subcommand |
//! |---|---|---|
//! | Table 1 (NAT resource usage) | [`table1`] | `table1` |
//! | Table 2 (published designs vs MPF200T) | [`table2`] | `table2` |
//! | Table 3 (cost/power per 10 G) | [`table3`] | `table3` |
//! | Figure 1 (architecture shells) | [`fig1`] | `fig1` |
//! | Figure 2 (prototype inventory) | [`fig2`] | `fig2` |
//! | §5.1 line-rate NAT test | [`linerate`] | `linerate` |
//! | §5 power measurements | [`power`] | `power` |
//! | §5.3 scalability | [`scaling`] | `scaling` |
//! | design-choice ablations | [`ablations`] | `ablations` |
//! | §6 latency vs placement | [`latency`] | `latency` |
//! | simulator throughput baseline | [`perf`] | `perf` |
//! | city-soak SLO workload | [`soak`] | `soak` |
//! | rack-scale crossbar workload | [`rack`] | `rack` |
//!
//! Each module exposes a `run()` returning a serde-serializable report
//! and a `render()` producing the human-readable table with the same
//! rows the paper prints. The `experiments` binary wires them to a CLI.
//!
//! Sweeps with independent points run on scoped worker threads via
//! [`par::par_map`] (one module instance per point, results in input
//! order), so multi-core hosts cut sweep wall-clock without changing any
//! output byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod latency;
pub mod linerate;
pub mod par;
pub mod perf;
pub mod power;
pub mod rack;
pub mod render;
pub mod scaling;
pub mod shard;
pub mod slo;
pub mod soak;
pub mod table1;
pub mod table2;
pub mod table3;
