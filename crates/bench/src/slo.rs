//! SLO gate over the §5.1 NAT workload (`experiments slo`).
//!
//! Streams the same paced 64-flow NAT workload as `perf` through a
//! module with the always-on windowed telemetry, then evaluates an
//! [`SloSpec`] against every live window via [`flexsfp_obs::slo`]. The
//! CLI exits nonzero when any window breaches — the bench doubles as a
//! release gate: a healthy module must pass [`SloSpec::generous`], and
//! `--breach` swaps in [`breach_spec`] (a 1 ns p99.9 bound no real
//! pipeline can meet) to prove the detector actually fires.

use crate::{perf, render};
use flexsfp_obs::slo::{SloReport, SloSpec};
use flexsfp_wire::PacketArena;

/// Packets in the full gate run.
pub const FULL_PACKETS: usize = 200_000;
/// Packets in the `--quick` (CI) run.
pub const QUICK_PACKETS: usize = 20_000;

/// Result of one SLO evaluation over the NAT workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Packets offered.
    pub packets: u64,
    /// Packets the module forwarded.
    pub forwarded: u64,
    /// Width of each telemetry window, nanoseconds.
    pub window_width_ns: u64,
    /// The spec that was evaluated.
    pub spec: SloSpec,
    /// Per-window verdicts and breaches.
    pub report: SloReport,
}

flexsfp_obs::impl_json_struct!(Outcome {
    packets,
    forwarded,
    window_width_ns,
    spec,
    report
});

/// A spec no forwarding pipeline can meet: 1 ns p99.9 latency. Used by
/// `experiments slo --breach` to verify the gate exits nonzero when a
/// window is out of budget.
pub fn breach_spec() -> SloSpec {
    SloSpec {
        p999_latency_ns: 1,
        ..SloSpec::generous()
    }
}

/// Stream `packets` of the §5.1 NAT workload and evaluate `spec`
/// against the module's windowed telemetry.
pub fn run(packets: usize, spec: SloSpec) -> Outcome {
    let mut module = perf::nat_module();
    let arena = PacketArena::new();
    let stream = module.run_stream_with(perf::workload(packets, &arena), |out| {
        arena.recycle(out.frame)
    });
    let report = flexsfp_obs::slo::evaluate(&spec, module.windows());
    Outcome {
        packets: packets as u64,
        forwarded: stream.forwarded.0 + stream.forwarded.1,
        window_width_ns: module.windows().width_ns(),
        spec,
        report,
    }
}

/// Human-readable report: the spec, the verdict, and the first few
/// breaching windows when unhealthy.
pub fn render(o: &Outcome) -> String {
    let rows = vec![vec![
        render::grouped(o.packets),
        render::grouped(o.forwarded),
        render::grouped(o.window_width_ns),
        o.report.windows_evaluated.to_string(),
        o.report.breaches.len().to_string(),
        if o.report.healthy { "yes" } else { "NO" }.to_string(),
    ]];
    let mut out = format!(
        "slo: §5.1 NAT workload vs spec (p99.9 ≤ {} ns, unexplained drops ≤ {:.2}%, cache hits ≥ {:.0}%)\n{}",
        o.spec.p999_latency_ns,
        o.spec.max_unexplained_drop_rate * 100.0,
        o.spec.min_cache_hit_rate * 100.0,
        render::table(
            &[
                "packets",
                "forwarded",
                "window ns",
                "windows",
                "breaches",
                "healthy",
            ],
            &rows,
        )
    );
    for b in o.report.breaches.iter().take(5) {
        out.push_str(&format!(
            "\n  breach @ {} ns: {} = {:.3} (bound {:.3})",
            b.window_start_ns, b.metric, b.value, b.bound
        ));
    }
    if o.report.breaches.len() > 5 {
        out.push_str(&format!("\n  … and {} more", o.report.breaches.len() - 5));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_obs::json::{FromJson, ToJson, Value};

    #[test]
    fn healthy_nat_workload_passes_the_generous_spec() {
        let o = run(QUICK_PACKETS, SloSpec::generous());
        assert_eq!(o.forwarded, QUICK_PACKETS as u64);
        assert!(o.report.windows_evaluated > 0, "windows must be populated");
        assert!(
            o.report.healthy,
            "generous spec breached: {:?}",
            o.report.breaches
        );
    }

    #[test]
    fn injected_p999_breach_is_detected() {
        let o = run(QUICK_PACKETS, breach_spec());
        assert!(!o.report.healthy);
        assert!(
            o.report
                .breaches
                .iter()
                .any(|b| b.metric == "p999_latency_ns"),
            "expected a latency breach, got {:?}",
            o.report.breaches
        );
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let o = run(5_000, breach_spec());
        let text = o.to_json().to_string_pretty();
        let back = Outcome::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn render_names_the_verdict_and_breaches() {
        let healthy = render(&run(5_000, SloSpec::generous()));
        assert!(healthy.contains("yes"));
        let breached = render(&run(5_000, breach_spec()));
        assert!(breached.contains("NO"));
        assert!(breached.contains("breach @"));
    }
}
