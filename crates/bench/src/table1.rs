//! Table 1: resource usage for the NAT case study, per component.
//!
//! Rows: Mi-V, electrical interface, optical interface, NAT app, the
//! "Used" sum, device availability and percentage utilization — on the
//! MPF200T, for the 32 768-flow NAT at 64 b / 156.25 MHz.

use crate::render;
use flexsfp_apps::StaticNat;
use flexsfp_fabric::resources::{table1, Device, ResourceManifest};
use flexsfp_ppe::PacketProcessor;

/// One row of the table.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Row {
    /// Component name.
    pub component: String,
    /// Resource usage.
    pub usage: ResourceManifest,
}

flexsfp_obs::impl_json_struct!(Row { component, usage });

/// The full report.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Per-component rows.
    pub rows: Vec<Row>,
    /// Summed usage.
    pub used: ResourceManifest,
    /// Device availability.
    pub available: ResourceManifest,
    /// Utilization percentages (lut, ff, usram, lsram).
    pub utilization_pct: (u32, u32, u32, u32),
    /// Whole design fits the device.
    pub fits: bool,
}

flexsfp_obs::impl_json_struct!(Report {
    rows,
    used,
    available,
    utilization_pct,
    fits
});

/// Regenerate Table 1.
pub fn run() -> Report {
    // The NAT application's manifest comes from the running app model
    // (calibrated to the synthesis report); interfaces and Mi-V are the
    // calibrated IP-core manifests.
    let nat = StaticNat::new();
    let rows = vec![
        Row {
            component: "Mi-V".into(),
            usage: table1::MI_V,
        },
        Row {
            component: "Elec. I/F".into(),
            usage: table1::ELECTRICAL_IF,
        },
        Row {
            component: "Opt. I/F".into(),
            usage: table1::OPTICAL_IF,
        },
        Row {
            component: "NAT app".into(),
            usage: nat.resource_manifest(),
        },
    ];
    let used: ResourceManifest = rows.iter().map(|r| r.usage).sum();
    let device = Device::mpf200t();
    let fit = device.fit(used);
    Report {
        rows,
        used,
        available: device.capacity,
        utilization_pct: fit.utilization_pct(),
        fits: fit.fits(),
    }
}

/// Render the report in the paper's layout.
pub fn render(r: &Report) -> String {
    let mut rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.component.clone(),
                render::grouped(row.usage.lut4),
                render::grouped(row.usage.ff),
                render::grouped(row.usage.usram),
                render::grouped(row.usage.lsram),
            ]
        })
        .collect();
    rows.push(vec![
        "Used".into(),
        render::grouped(r.used.lut4),
        render::grouped(r.used.ff),
        render::grouped(r.used.usram),
        render::grouped(r.used.lsram),
    ]);
    rows.push(vec![
        "Avail.".into(),
        render::grouped(r.available.lut4),
        render::grouped(r.available.ff),
        render::grouped(r.available.usram),
        render::grouped(r.available.lsram),
    ]);
    let (l, f, u, s) = r.utilization_pct;
    rows.push(vec![
        "Perc.".into(),
        format!("{l}%"),
        format!("{f}%"),
        format!("{u}% (~{}kb)", r.used.usram * 768 / 1000),
        format!("{s}% (~{:.1}Mb)", r.used.lsram as f64 * 20.0 / 1024.0),
    ]);
    format!(
        "Table 1: Resource usage for the simple NAT case study (MPF200T)\n{}",
        render::table(&["", "4LUT", "FF", "uSRAM", "LSRAM"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_used_row() {
        let r = run();
        assert_eq!(r.used, ResourceManifest::new(31_455, 25_518, 278, 164));
        assert!(r.fits);
    }

    #[test]
    fn percentages_within_rounding_of_paper() {
        // Paper prints 16/13/15/26 (flooring); we round. Either way the
        // integers must be within 1.
        let r = run();
        let (l, f, u, s) = r.utilization_pct;
        assert!(l.abs_diff(16) <= 1);
        assert!(f.abs_diff(13) <= 1);
        assert!(u.abs_diff(15) <= 1);
        assert!(s.abs_diff(26) <= 1);
    }

    #[test]
    fn render_contains_all_rows() {
        let text = render(&run());
        for needle in [
            "Mi-V",
            "Elec. I/F",
            "Opt. I/F",
            "NAT app",
            "Used",
            "Avail.",
            "Perc.",
        ] {
            assert!(text.contains(needle), "missing {needle}\n{text}");
        }
        assert!(text.contains("31 455"));
        assert!(text.contains("192 408"));
    }
}
