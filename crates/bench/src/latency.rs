//! §6 "Latency overhead": FlexSFP vs SmartNIC vs host CPU, and the
//! early-enforcement payoff.
//!
//! The paper asks "which practical impact of introducing processing
//! within the SFP, and when is the trade-off between added latency and
//! early enforcement justified?" This experiment answers both halves:
//!
//! 1. **Added latency** — the same filtering workload through the three
//!    placements, reporting mean / p99 / max;
//! 2. **Early enforcement** — with X % of traffic destined to be
//!    dropped, enforcement at the cable saves the downstream link and
//!    host resources that late enforcement wastes carrying doomed
//!    packets.

use flexsfp_host::baselines::ProcessingPath;
use flexsfp_traffic::{LineRateCalc, SizeModel, TraceBuilder};
use flexsfp_wire::PacketArena;

/// Latency of one placement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlacementLatency {
    /// Placement name.
    pub placement: String,
    /// Mean, ns.
    pub mean_ns: f64,
    /// 99th percentile, ns.
    pub p99_ns: f64,
    /// Max, ns.
    pub max_ns: f64,
}

flexsfp_obs::impl_json_struct!(PlacementLatency {
    placement,
    mean_ns,
    p99_ns,
    max_ns
});

/// Early-enforcement accounting for one placement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnforcementRow {
    /// Placement name.
    pub placement: String,
    /// Bytes of doomed traffic carried over the downstream link before
    /// being dropped.
    pub wasted_downstream_bytes: u64,
    /// Fraction of downstream capacity wasted.
    pub wasted_share: f64,
}

flexsfp_obs::impl_json_struct!(EnforcementRow {
    placement,
    wasted_downstream_bytes,
    wasted_share
});

/// The report.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Latency comparison at moderate load.
    pub latency: Vec<PlacementLatency>,
    /// Early-enforcement comparison (20 % of traffic blocked).
    pub enforcement: Vec<EnforcementRow>,
    /// Blocked fraction used.
    pub blocked_fraction: f64,
    /// Offered load where each placement saturates (fraction of 10G
    /// line rate at 64 B frames), derived from service times.
    pub saturation_load: Vec<(String, f64)>,
}

flexsfp_obs::impl_json_struct!(Report {
    latency,
    enforcement,
    blocked_fraction,
    saturation_load
});

/// Run the comparison (`n` packets).
pub fn run(n: usize) -> Report {
    // A 5%-of-line-rate filtering workload (744 kpps of 64 B frames) —
    // below every placement's saturation point, so the comparison
    // isolates *path* latency. (At 64 B the host-CPU path saturates
    // around 9% of 10G line rate; the FlexSFP runs to 100%.)
    // Only arrival times and byte totals are needed downstream, so the
    // trace streams through one recycled arena buffer instead of being
    // materialized.
    let arena = PacketArena::new();
    let mut arrivals: Vec<u64> = Vec::with_capacity(n);
    let mut total_bytes: u64 = 0;
    for p in TraceBuilder::new(0x6a7)
        .sizes(SizeModel::Fixed(60))
        .arrivals(flexsfp_traffic::gen::ArrivalModel::Poisson { utilization: 0.05 })
        .stream_pooled(n, arena.clone())
    {
        arrivals.push(p.arrival_ns);
        total_bytes += p.frame.len() as u64;
        arena.recycle(p.frame);
    }

    // The three placements are independent servers over the same arrival
    // sequence — one sweep point each.
    let latency = crate::par::par_map(
        vec![
            ProcessingPath::flexsfp(1),
            ProcessingPath::smartnic(1),
            ProcessingPath::host_cpu(1),
        ],
        |mut path| {
            let name = path.name;
            let stats = path.run(&arrivals);
            PlacementLatency {
                placement: name.into(),
                mean_ns: stats.mean_ns(),
                p99_ns: stats.quantile_ns(0.99),
                max_ns: stats.max_ns(),
            }
        },
    );

    // Early enforcement: 20% of traffic is policy-blocked. At the cable
    // the doomed bytes never touch the downstream link; at the NIC they
    // cross the link once; on the host CPU they cross the link AND the
    // PCIe/memory path (counted as the same wasted link bytes here —
    // the host additionally burns cycles, visible in the latency rows).
    let blocked_fraction = 0.20;
    let doomed_bytes = (total_bytes as f64 * blocked_fraction) as u64;
    let span_ns = arrivals.last().copied().unwrap_or(1).max(1);
    let link_capacity_bytes =
        (LineRateCalc::TEN_GIG.rate_bps as f64 / 8.0 * span_ns as f64 / 1e9) as u64;
    let enforcement = vec![
        EnforcementRow {
            placement: "FlexSFP (drop at cable)".into(),
            wasted_downstream_bytes: 0,
            wasted_share: 0.0,
        },
        EnforcementRow {
            placement: "SmartNIC (drop at NIC)".into(),
            wasted_downstream_bytes: doomed_bytes,
            wasted_share: doomed_bytes as f64 / link_capacity_bytes as f64,
        },
        EnforcementRow {
            placement: "Host CPU (drop in kernel)".into(),
            wasted_downstream_bytes: doomed_bytes,
            wasted_share: doomed_bytes as f64 / link_capacity_bytes as f64,
        },
    ];
    // Saturation: a placement saturates when arrivals outpace its
    // per-packet service time. 64 B @ 10G arrives every 67.2 ns.
    let saturation = |service_ns: f64| (67.2 / service_ns).min(1.0);
    let saturation_load = vec![
        ("FlexSFP (in-cable)".to_string(), saturation(51.2)),
        ("SmartNIC".to_string(), saturation(45.0)),
        ("Host CPU".to_string(), saturation(770.0)),
    ];
    Report {
        latency,
        enforcement,
        blocked_fraction,
        saturation_load,
    }
}

/// Render both halves.
pub fn render(r: &Report) -> String {
    let latency_rows: Vec<Vec<String>> = r
        .latency
        .iter()
        .map(|p| {
            vec![
                p.placement.clone(),
                format!("{:.0}", p.mean_ns),
                format!("{:.0}", p.p99_ns),
                format!("{:.0}", p.max_ns),
            ]
        })
        .collect();
    let enf_rows: Vec<Vec<String>> = r
        .enforcement
        .iter()
        .map(|p| {
            vec![
                p.placement.clone(),
                p.wasted_downstream_bytes.to_string(),
                format!("{:.2}%", p.wasted_share * 100.0),
            ]
        })
        .collect();
    let sat_rows: Vec<Vec<String>> = r
        .saturation_load
        .iter()
        .map(|(name, load)| vec![name.clone(), format!("{:.0}%", load * 100.0)])
        .collect();
    format!(
        "S6 latency vs placement (64B filtering workload @ 5% of 10G, below all saturation points)\n{}\nSaturation load (64 B frames, fraction of 10G line rate)\n{}\nEarly enforcement ({:.0}% of traffic blocked): downstream bytes wasted carrying doomed packets\n{}",
        crate::render::table(&["Placement", "Mean ns", "p99 ns", "Max ns"], &latency_rows),
        crate::render::table(&["Placement", "Saturates at"], &sat_rows),
        r.blocked_fraction * 100.0,
        crate::render::table(&["Placement", "Wasted bytes", "Link share"], &enf_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering_holds() {
        let r = run(10_000);
        assert_eq!(r.latency.len(), 3);
        let flex = &r.latency[0];
        let nic = &r.latency[1];
        let host = &r.latency[2];
        // Sub-microsecond vs microseconds vs tens of microseconds.
        assert!(flex.mean_ns < 1_000.0, "{flex:?}");
        assert!(nic.mean_ns > 3_000.0 && nic.mean_ns < 10_000.0, "{nic:?}");
        assert!(
            host.mean_ns > 25_000.0 && host.mean_ns < 100_000.0,
            "{host:?}"
        );
        // The host tail is the pathology the paper motivates with.
        assert!(host.p99_ns > 1.8 * host.mean_ns, "{host:?}");
        assert!(flex.p99_ns < 1_000.0);
    }

    #[test]
    fn early_enforcement_saves_the_link() {
        let r = run(5_000);
        assert_eq!(r.enforcement[0].wasted_downstream_bytes, 0);
        assert!(r.enforcement[1].wasted_downstream_bytes > 0);
        assert_eq!(
            r.enforcement[1].wasted_downstream_bytes,
            r.enforcement[2].wasted_downstream_bytes
        );
        // At 5% load with 20% blocked, ~0.7% of the link is wasted by
        // late enforcement (scales linearly with load).
        assert!(
            (0.004..0.02).contains(&r.enforcement[1].wasted_share),
            "{r:?}"
        );
    }

    #[test]
    fn render_sections() {
        let text = render(&run(2_000));
        assert!(text.contains("FlexSFP"));
        assert!(text.contains("Host CPU"));
        assert!(text.contains("Early enforcement"));
        assert!(text.contains("Saturation load"));
    }
}
