//! Minimal fixed-width table rendering for experiment reports.

/// Render a table: header row + data rows, columns padded to content.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// Format a f64 with thousands-grouping-free fixed digits.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format an integer with thin separators every 3 digits (as the paper
/// prints resource counts).
pub fn grouped(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(' ');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn grouping() {
        assert_eq!(grouped(31455), "31 455");
        assert_eq!(grouped(616), "616");
        assert_eq!(grouped(1764), "1 764");
        assert_eq!(grouped(192408), "192 408");
    }

    #[test]
    fn float_format() {
        assert_eq!(f(1.5, 1), "1.5");
        assert_eq!(f(0.893, 3), "0.893");
    }
}
