//! The §5.1 end-to-end test: NAT at 10 Gb/s line rate.
//!
//! "We performed a simple end-to-end test, which confirmed line-rate
//! performance." The NAT module is offered line-rate traffic at a sweep
//! of frame sizes; the experiment reports offered vs delivered rate,
//! translation correctness and latency. Line rate holds when delivery
//! is 1.0 at every size, including 64-byte worst case.

use flexsfp_apps::StaticNat;
use flexsfp_core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp_ppe::Direction;
use flexsfp_traffic::{LineRateCalc, SizeModel, TraceBuilder};
use flexsfp_wire::ipv4::Ipv4Packet;
use flexsfp_wire::PacketArena;

/// One frame-size measurement.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Frame size (no FCS), bytes.
    pub frame_len: usize,
    /// Offered rate, packets/s.
    pub offered_pps: f64,
    /// Delivered fraction.
    pub delivery: f64,
    /// Delivered dataplane throughput, Gb/s (frame bits).
    pub delivered_gbps: f64,
    /// All delivered packets correctly translated.
    pub translated_ok: bool,
    /// Mean latency, ns.
    pub mean_latency_ns: f64,
}

flexsfp_obs::impl_json_struct!(Point {
    frame_len,
    offered_pps,
    delivery,
    delivered_gbps,
    translated_ok,
    mean_latency_ns
});

/// The report.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Per-size points.
    pub points: Vec<Point>,
    /// Line rate confirmed at every size.
    pub line_rate_confirmed: bool,
}

flexsfp_obs::impl_json_struct!(Report {
    points,
    line_rate_confirmed
});

const PRIVATE_BASE: u32 = 0xc0a8_0000;
const PUBLIC_BASE: u32 = 0x6540_0000;

fn nat_module(flows: usize) -> FlexSfp {
    let mut nat = StaticNat::new();
    for i in 0..flows as u32 {
        nat.add_mapping(PRIVATE_BASE + i, PUBLIC_BASE + i)
            .expect("mapping install");
    }
    FlexSfp::new(ModuleConfig::default(), Box::new(nat))
}

/// Run the sweep with `n` packets per size. Sizes are independent points
/// (one module each), so they run on scoped worker threads; each point
/// streams its trace through an arena, verifying translation in the sink,
/// so memory stays O(1) in `n` and no frame is ever cloned.
pub fn run(n: usize) -> Report {
    let sizes = vec![60usize, 128, 256, 512, 1024, 1514];
    let flows = 64;
    let calc = LineRateCalc::TEN_GIG;
    let points = crate::par::par_map(sizes, |len| {
        let mut module = nat_module(flows);
        let arena = PacketArena::new();
        let stream = TraceBuilder::new(0x51)
            .flows(flows)
            .src_base(PRIVATE_BASE)
            .sizes(SizeModel::Fixed(len))
            .arrivals(flexsfp_traffic::gen::ArrivalModel::Paced { utilization: 1.0 })
            .stream_pooled(n, arena.clone());
        // Verify translation on each output as it leaves the module.
        let mut translated_ok = true;
        let report = module.run_stream_with(
            stream.map(|p| SimPacket {
                arrival_ns: p.arrival_ns,
                direction: Direction::EdgeToOptical,
                frame: p.frame,
            }),
            |o| {
                translated_ok &= Ipv4Packet::new_checked(&o.frame[14..])
                    .map(|ip| {
                        (PUBLIC_BASE..PUBLIC_BASE + flows as u32).contains(&ip.src())
                            && ip.verify_checksum()
                    })
                    .unwrap_or(false);
                arena.recycle(o.frame);
            },
        );
        Point {
            frame_len: len,
            offered_pps: calc.max_fps(len),
            delivery: report.delivery_ratio(),
            delivered_gbps: report.delivered_bps() / 1e9,
            translated_ok,
            mean_latency_ns: report.latency.mean_ns(),
        }
    });
    let line_rate_confirmed = points.iter().all(|p| p.delivery >= 1.0 && p.translated_ok);
    Report {
        points,
        line_rate_confirmed,
    }
}

/// Render the sweep.
pub fn render(r: &Report) -> String {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.frame_len.to_string(),
                format!("{:.0}", p.offered_pps),
                format!("{:.4}", p.delivery),
                format!("{:.3}", p.delivered_gbps),
                p.translated_ok.to_string(),
                format!("{:.0}", p.mean_latency_ns),
            ]
        })
        .collect();
    format!(
        "S5.1 end-to-end NAT line-rate test (10G, one-way filter, 64b @ 156.25 MHz)\n{}\nline rate confirmed: {}",
        crate::render::table(
            &["Frame B", "Offered pps", "Delivery", "Gb/s out", "NAT ok", "Mean ns"],
            &rows
        ),
        r.line_rate_confirmed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rate_confirmed_at_all_sizes() {
        let r = run(3_000);
        assert!(r.line_rate_confirmed, "{r:#?}");
        // Worst case 64 B: 14.88 Mpps offered, zero loss.
        let min = &r.points[0];
        assert_eq!(min.frame_len, 60);
        assert!((min.offered_pps - 14_880_952.0).abs() < 10.0);
        assert_eq!(min.delivery, 1.0);
    }

    #[test]
    fn throughput_grows_with_frame_size() {
        let r = run(2_000);
        // Bigger frames → more goodput (less per-frame overhead).
        let gbps: Vec<f64> = r.points.iter().map(|p| p.delivered_gbps).collect();
        for w in gbps.windows(2) {
            assert!(w[1] > w[0], "{gbps:?}");
        }
        // 1514 B approaches 9.8 Gb/s of frame bits.
        assert!(*gbps.last().unwrap() > 9.5, "{gbps:?}");
    }

    #[test]
    fn latency_stays_sub_microsecond() {
        let r = run(2_000);
        for p in &r.points {
            assert!(p.mean_latency_ns < 2_500.0, "{p:?}");
        }
    }
}
