//! §5.3 scalability: from 10 G to 100 G.
//!
//! "This is typically achieved by adjusting the width of the internal
//! datapath (e.g., from 64-bit to 512-bit or wider) and/or raising the
//! clock frequency … Both adjustments require a more powerful FPGA,
//! which in turn leads to three main constraints: physical size, power
//! consumption, and thermal dissipation." The sweep evaluates every
//! (width × clock) pair for sustainable line rate, estimated module
//! power for a NAT-class design, and whether the result still fits an
//! SFP+-class power envelope or needs a bigger form factor.

use flexsfp_fabric::power::{PowerClass, PowerModel};
use flexsfp_fabric::resources::table1;
use flexsfp_fabric::stream::{BusWidth, DatapathConfig};
use flexsfp_fabric::ClockDomain;

/// One (width, clock) design point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Datapath width, bits.
    pub width_bits: u32,
    /// Clock, MHz.
    pub clock_mhz: f64,
    /// Raw bus bandwidth, Gb/s.
    pub bus_gbps: f64,
    /// Highest standard line rate sustained at 64 B frames (Gb/s).
    pub max_line_rate_gbps: u32,
    /// Estimated module power, W (NAT-class design, 2 lanes, stress).
    pub power_w: f64,
    /// SFP+ power class, or None (needs QSFP/OSFP envelope).
    pub power_class: Option<String>,
}

flexsfp_obs::impl_json_struct!(Point {
    width_bits,
    clock_mhz,
    bus_gbps,
    max_line_rate_gbps,
    power_w,
    power_class
});

/// The report.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// All sweep points.
    pub points: Vec<Point>,
}

flexsfp_obs::impl_json_struct!(Report { points });

/// Standard line rates probed, Gb/s.
const LINE_RATES: [u32; 4] = [10, 25, 40, 100];

fn estimate_power(width: BusWidth, clock: ClockDomain) -> f64 {
    // Wider datapaths replicate the processing logic across the bus:
    // active units scale with width; interface/Mi-V overheads scale
    // sublinearly (shared control).
    let width_factor = f64::from(width.bits()) / 64.0;
    let scale = |v: u64| (v as f64 * width_factor) as u64;
    let design = flexsfp_fabric::resources::ResourceManifest::new(
        scale(table1::NAT_APP.lut4) + table1::MI_V.lut4 + 2 * table1::ELECTRICAL_IF.lut4,
        scale(table1::NAT_APP.ff) + table1::MI_V.ff + 2 * table1::ELECTRICAL_IF.ff,
        scale(table1::NAT_APP.usram) + table1::MI_V.usram + 2 * table1::ELECTRICAL_IF.usram,
        scale(table1::NAT_APP.lsram) + table1::MI_V.lsram,
    );
    // Faster line rates also mean faster SerDes: lane power scales
    // roughly with line rate (width_factor here).
    let model = PowerModel {
        serdes_lane_w: PowerModel::flexsfp_prototype().serdes_lane_w * width_factor,
        ..PowerModel::flexsfp_prototype()
    };
    model.power(&design, clock, 2, 1.0, 1.0).total_w()
}

/// Run the sweep. The (width × clock) points are independent, so they
/// go through the scoped-thread sweep runner.
pub fn run() -> Report {
    let clocks = [ClockDomain::XGMII_10G, ClockDomain::XGMII_10G_X2];
    let pairs: Vec<(BusWidth, ClockDomain)> = BusWidth::all()
        .into_iter()
        .flat_map(|width| clocks.into_iter().map(move |clock| (width, clock)))
        .collect();
    let points = crate::par::par_map(pairs, |(width, clock)| {
        let cfg = DatapathConfig { width, clock };
        // Line rate must hold across the whole frame-size range:
        // small frames stress packet rate, large frames stress raw
        // bus bandwidth (the padded final beat).
        let max_rate = LINE_RATES
            .iter()
            .rev()
            .find(|&&g| {
                let bps = u64::from(g) * 1_000_000_000;
                cfg.sustains_line_rate(bps, 64) && cfg.sustains_line_rate(bps, 1518)
            })
            .copied()
            .unwrap_or(0);
        let power_w = estimate_power(width, clock);
        Point {
            width_bits: width.bits(),
            clock_mhz: clock.mhz(),
            bus_gbps: cfg.bandwidth_bps() as f64 / 1e9,
            max_line_rate_gbps: max_rate,
            power_w,
            power_class: PowerClass::classify(power_w).map(|c| format!("{c:?}")),
        }
    });
    Report { points }
}

/// Render the sweep.
pub fn render(r: &Report) -> String {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.width_bits.to_string(),
                format!("{:.2}", p.clock_mhz),
                format!("{:.1}", p.bus_gbps),
                format!("{} G", p.max_line_rate_gbps),
                format!("{:.2}", p.power_w),
                p.power_class.clone().unwrap_or_else(|| "QSFP/OSFP".into()),
            ]
        })
        .collect();
    format!(
        "S5.3 scaling: datapath width x clock -> sustainable line rate and power envelope\n{}",
        crate::render::table(
            &[
                "Width b",
                "Clock MHz",
                "Bus Gb/s",
                "Line rate",
                "Power W",
                "Envelope"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(r: &Report, w: u32, mhz: f64) -> &Point {
        r.points
            .iter()
            .find(|p| p.width_bits == w && (p.clock_mhz - mhz).abs() < 0.1)
            .unwrap()
    }

    #[test]
    fn prototype_point_sustains_exactly_10g() {
        let r = run();
        let p = point(&r, 64, 156.25);
        assert_eq!(p.max_line_rate_gbps, 10);
        assert!((p.bus_gbps - 10.0).abs() < 1e-9);
        // And it is the paper's ~1.5 W point.
        assert!((p.power_w - 1.52).abs() < 0.05, "{}", p.power_w);
    }

    #[test]
    fn hundred_gig_needs_512b() {
        let r = run();
        assert!(point(&r, 512, 312.5).max_line_rate_gbps >= 100);
        assert!(point(&r, 256, 156.25).max_line_rate_gbps < 100);
        // 256 b @ 312.5 MHz sustains 40 G but not 100 G.
        let p = point(&r, 256, 312.5);
        assert!(p.max_line_rate_gbps >= 40 && p.max_line_rate_gbps < 100);
    }

    #[test]
    fn power_grows_with_width_and_clock() {
        let r = run();
        let base = point(&r, 64, 156.25).power_w;
        assert!(point(&r, 64, 312.5).power_w > base);
        assert!(point(&r, 512, 156.25).power_w > point(&r, 128, 156.25).power_w);
        // The 100 G point busts the SFP+ envelope — the §5.3 "larger
        // form factors like QSFP and OSFP" observation.
        let hundred = point(&r, 512, 312.5);
        assert!(
            hundred.power_class.is_none() || hundred.power_w > 2.0,
            "{hundred:?}"
        );
    }

    #[test]
    fn prototype_stays_in_sfp_class() {
        let r = run();
        let p = point(&r, 64, 156.25);
        assert!(p.power_class.is_some(), "{p:?}");
    }

    #[test]
    fn render_has_all_points() {
        let text = render(&run());
        assert!(text.contains("512"));
        assert!(text.contains("100 G"));
    }
}
