//! The §5 power measurements.
//!
//! Reproduces the three-point testbed measurement and the derived
//! module-level numbers, plus the decomposed FlexSFP power breakdown the
//! paper's measurement could not see (the model's added value).

use flexsfp_apps::StaticNat;
use flexsfp_core::module::{FlexSfp, ModuleConfig};
use flexsfp_host::testbed::{PowerMeasurement, PowerTestbed};

/// The report.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// NIC-level three-point measurement under stress.
    pub nic_only_w: f64,
    /// NIC + standard SFP.
    pub nic_with_sfp_w: f64,
    /// NIC + FlexSFP.
    pub nic_with_flexsfp_w: f64,
    /// Derived standard SFP power.
    pub sfp_w: f64,
    /// Derived FlexSFP power.
    pub flexsfp_w: f64,
    /// FPGA premium.
    pub premium_w: f64,
    /// FlexSFP breakdown at stress: optics/static/serdes/fabric.
    pub breakdown_w: (f64, f64, f64, f64),
    /// Idle FlexSFP power.
    pub flexsfp_idle_w: f64,
}

flexsfp_obs::impl_json_struct!(Report {
    nic_only_w,
    nic_with_sfp_w,
    nic_with_flexsfp_w,
    sfp_w,
    flexsfp_w,
    premium_w,
    breakdown_w,
    flexsfp_idle_w
});

/// Run the measurement.
pub fn run() -> Report {
    let m: PowerMeasurement = PowerTestbed::new().measure(1.0);
    let module = FlexSfp::new(ModuleConfig::default(), Box::new(StaticNat::new()));
    let busy = module.power(1.0, 1.0);
    let idle = module.power(0.0, 0.0);
    Report {
        nic_only_w: m.nic_only_w,
        nic_with_sfp_w: m.nic_with_sfp_w,
        nic_with_flexsfp_w: m.nic_with_flexsfp_w,
        sfp_w: m.sfp_w(),
        flexsfp_w: m.flexsfp_w(),
        premium_w: m.fpga_premium_w(),
        breakdown_w: (
            busy.optics_w,
            busy.fpga_static_w,
            busy.serdes_w,
            busy.fabric_dynamic_w,
        ),
        flexsfp_idle_w: idle.total_w(),
    }
}

/// Render the measurement in the paper's narrative order.
pub fn render(r: &Report) -> String {
    let rows = vec![
        vec!["NIC, empty cage".into(), format!("{:.3}", r.nic_only_w)],
        vec![
            "NIC + standard SFP (stress)".into(),
            format!("{:.3}", r.nic_with_sfp_w),
        ],
        vec![
            "NIC + FlexSFP (stress)".into(),
            format!("{:.3}", r.nic_with_flexsfp_w),
        ],
        vec!["-> standard SFP module".into(), format!("{:.3}", r.sfp_w)],
        vec!["-> FlexSFP module".into(), format!("{:.3}", r.flexsfp_w)],
        vec!["-> FPGA premium".into(), format!("{:.3}", r.premium_w)],
        vec!["FlexSFP idle".into(), format!("{:.3}", r.flexsfp_idle_w)],
    ];
    let (optics, statics, serdes, fabric) = r.breakdown_w;
    format!(
        "S5 power measurements (testbed simulation, line-rate stress)\n{}\nFlexSFP breakdown @ stress: optics {:.3} W, FPGA static {:.3} W, SerDes {:.3} W, fabric dynamic {:.3} W",
        crate::render::table(&["Operating point", "Watts"], &rows),
        optics,
        statics,
        serdes,
        fabric
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let r = run();
        assert!((r.nic_only_w - 3.800).abs() < 0.005);
        assert!((r.nic_with_sfp_w - 4.693).abs() < 0.01);
        assert!((r.nic_with_flexsfp_w - 5.320).abs() < 0.02);
        assert!((r.sfp_w - 0.9).abs() < 0.02);
        assert!((r.flexsfp_w - 1.5).abs() < 0.03);
        assert!((r.premium_w - 0.7).abs() < 0.08);
    }

    #[test]
    fn breakdown_sums_to_module_power() {
        let r = run();
        let (a, b, c, d) = r.breakdown_w;
        // NIC-attached FlexSFP power equals the module breakdown sum.
        assert!((a + b + c + d - r.flexsfp_w).abs() < 0.01);
    }

    #[test]
    fn idle_below_stress() {
        let r = run();
        assert!(r.flexsfp_idle_w < r.flexsfp_w);
        assert!(r.flexsfp_idle_w > 0.5); // static floor exists
    }

    #[test]
    fn render_has_all_points() {
        let text = render(&run());
        assert!(text.contains("3.800"));
        assert!(text.contains("4.69"));
        assert!(text.contains("5.3"));
        assert!(text.contains("fabric dynamic"));
    }
}
