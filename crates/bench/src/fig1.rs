//! Figure 1: the three architecture shells, exercised.
//!
//! The paper's figure is a block diagram; the testable content behind it
//! is (a) which directions traverse the PPE, (b) the Two-Way-Core's
//! doubled processing load and its clock mitigation, and (c) the
//! control-plane demux. This experiment drives every shell with
//! unidirectional and bidirectional line-rate minimum-frame traffic and
//! reports delivery, loss and latency — the series a figure would plot.

use flexsfp_core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp_core::ShellKind;
use flexsfp_fabric::ClockDomain;
use flexsfp_ppe::engine::PassThrough;
use flexsfp_ppe::Direction;
use flexsfp_traffic::{LineRateCalc, SizeModel, TraceBuilder};

/// One measured operating point.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Shell name.
    pub shell: String,
    /// PPE clock, MHz.
    pub ppe_mhz: f64,
    /// "uni" or "bidir".
    pub load: String,
    /// Offered packets.
    pub offered: u64,
    /// Delivered fraction.
    pub delivery: f64,
    /// FIFO-overflow drops.
    pub fifo_drops: u64,
    /// Mean latency, ns.
    pub mean_latency_ns: f64,
    /// Max latency, ns.
    pub max_latency_ns: f64,
}

flexsfp_obs::impl_json_struct!(Point {
    shell,
    ppe_mhz,
    load,
    offered,
    delivery,
    fifo_drops,
    mean_latency_ns,
    max_latency_ns
});

/// The report.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// All measured points.
    pub points: Vec<Point>,
}

flexsfp_obs::impl_json_struct!(Report { points });

fn trace(bidir: bool, n: usize) -> Vec<SimPacket> {
    let packets = TraceBuilder::new(0xf1)
        .sizes(SizeModel::Fixed(60))
        .arrivals(flexsfp_traffic::gen::ArrivalModel::Paced { utilization: 1.0 })
        .rate(LineRateCalc::TEN_GIG)
        .build(n);
    let mut out = Vec::with_capacity(if bidir { 2 * n } else { n });
    for p in packets {
        out.push(SimPacket {
            arrival_ns: p.arrival_ns,
            direction: Direction::EdgeToOptical,
            frame: p.frame.clone(),
        });
        if bidir {
            out.push(SimPacket {
                arrival_ns: p.arrival_ns,
                direction: Direction::OpticalToEdge,
                frame: p.frame,
            });
        }
    }
    out.sort_by_key(|p| p.arrival_ns);
    out
}

fn measure(shell: ShellKind, ppe_clock: ClockDomain, bidir: bool, n: usize) -> Point {
    let mut module = FlexSfp::new(
        ModuleConfig {
            shell,
            ppe_clock,
            ..Default::default()
        },
        Box::new(PassThrough),
    );
    let report = module.run(trace(bidir, n));
    Point {
        shell: shell.name().into(),
        ppe_mhz: ppe_clock.mhz(),
        load: if bidir { "bidir" } else { "uni" }.into(),
        offered: report.offered,
        delivery: report.delivery_ratio(),
        fifo_drops: report.drops.fifo_overflow,
        mean_latency_ns: report.latency.mean_ns(),
        max_latency_ns: report.latency.max_ns(),
    }
}

/// Run the shell comparison (`n` packets per direction per point).
pub fn run(n: usize) -> Report {
    let one_way = ShellKind::one_way_egress();
    let points = vec![
        measure(one_way, ClockDomain::XGMII_10G, false, n),
        measure(one_way, ClockDomain::XGMII_10G, true, n),
        measure(ShellKind::TwoWayCore, ClockDomain::XGMII_10G, true, n),
        measure(ShellKind::TwoWayCore, ClockDomain::XGMII_10G_X2, true, n),
        measure(
            ShellKind::ActiveControlPlane,
            ClockDomain::XGMII_10G_X2,
            true,
            n,
        ),
    ];
    Report { points }
}

/// Render the series.
pub fn render(r: &Report) -> String {
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.shell.clone(),
                format!("{:.2}", p.ppe_mhz),
                p.load.clone(),
                p.offered.to_string(),
                format!("{:.4}", p.delivery),
                p.fifo_drops.to_string(),
                format!("{:.0}", p.mean_latency_ns),
                format!("{:.0}", p.max_latency_ns),
            ]
        })
        .collect();
    format!(
        "Figure 1: architecture shells under line-rate 64B load (10G per direction)\n{}",
        crate::render::table(
            &[
                "Shell",
                "PPE MHz",
                "Load",
                "Offered",
                "Delivery",
                "FIFO drops",
                "Mean ns",
                "Max ns"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_behaviour_matches_paper() {
        let r = run(4_000);
        let by = |shell: &str, mhz: f64, load: &str| -> &Point {
            r.points
                .iter()
                .find(|p| p.shell == shell && (p.ppe_mhz - mhz).abs() < 0.1 && p.load == load)
                .unwrap()
        };
        // One-Way-Filter sustains both loads (reverse path bypasses).
        assert_eq!(by("One-Way-Filter", 156.25, "uni").delivery, 1.0);
        assert_eq!(by("One-Way-Filter", 156.25, "bidir").delivery, 1.0);
        // Two-Way-Core at 1× collapses under bidirectional load…
        let slow = by("Two-Way-Core", 156.25, "bidir");
        assert!(slow.delivery < 0.8, "delivery {}", slow.delivery);
        assert!(slow.fifo_drops > 0);
        // …and recovers fully at 2×.
        let fast = by("Two-Way-Core", 312.5, "bidir");
        assert_eq!(fast.delivery, 1.0);
        assert_eq!(fast.fifo_drops, 0);
        // Active control plane behaves like Two-Way-Core at 2×.
        assert_eq!(by("Active-Control-Plane", 312.5, "bidir").delivery, 1.0);
    }

    #[test]
    fn latency_ordering() {
        let r = run(2_000);
        // The overloaded point has far higher mean latency (queueing).
        let slow = r
            .points
            .iter()
            .find(|p| p.shell == "Two-Way-Core" && p.ppe_mhz < 200.0)
            .unwrap();
        let fast = r
            .points
            .iter()
            .find(|p| p.shell == "Two-Way-Core" && p.ppe_mhz > 200.0)
            .unwrap();
        assert!(slow.mean_latency_ns > 5.0 * fast.mean_latency_ns);
        // The unloaded shells transit in well under a microsecond.
        assert!(fast.max_latency_ns < 1_000.0);
    }

    #[test]
    fn render_mentions_every_shell() {
        let text = render(&run(500));
        for s in ["One-Way-Filter", "Two-Way-Core", "Active-Control-Plane"] {
            assert!(text.contains(s));
        }
    }
}
