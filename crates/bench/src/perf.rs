//! Simulator-throughput baseline (`experiments perf`).
//!
//! Measures how fast the simulator itself runs — not the modeled
//! hardware — on the §5.1 NAT workload with 64-byte frames: packets
//! simulated per wall-clock second (Mpps), peak RSS as the memory proxy,
//! and the arena's allocation count as the O(1)-memory witness. The
//! whole run is streaming: frames are leased from a [`PacketArena`],
//! generated on the fly by [`TraceBuilder::stream_pooled`], pushed
//! through [`FlexSfp::run_stream_with`], and recycled from the sink, so
//! neither the trace nor the outputs are ever materialized and memory
//! stays constant in trace length.
//!
//! `BENCH_throughput.json` (written by the `perf` subcommand, committed
//! at the repo root) is the perf trajectory every optimization PR is
//! measured against.

use crate::render;
use flexsfp_apps::StaticNat;
use flexsfp_core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp_ppe::Direction;
use flexsfp_traffic::gen::ArrivalModel;
use flexsfp_traffic::{SizeModel, TraceBuilder};
use flexsfp_wire::PacketArena;
use std::time::Instant;

/// Packets in the full measurement run (§5.1 scale).
pub const FULL_PACKETS: usize = 2_000_000;
/// Packets in the `--quick` (CI) run.
pub const QUICK_PACKETS: usize = 200_000;

/// Trace seed — same workload as the line-rate experiment.
const SEED: u64 = 0x51;
/// Flow count and NAT population.
const FLOWS: usize = 64;
/// Private source base (192.168.0.0).
const PRIVATE_BASE: u32 = 0xc0a8_0000;
/// Public pool base (101.64.0.0).
const PUBLIC_BASE: u32 = 0x6540_0000;
/// Frame length under test: minimum-size (worst-case packet rate).
const FRAME_LEN: usize = 60;

/// One throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Packets simulated.
    pub packets: u64,
    /// Frame length offered (B, without FCS).
    pub frame_len: u64,
    /// Distinct flows (= NAT table population).
    pub flows: u64,
    /// Wall-clock for the whole streaming run (generation + simulation), s.
    pub wall_s: f64,
    /// Simulated packets per wall-clock second, millions.
    pub mpps: f64,
    /// Packets forwarded by the module.
    pub forwarded: u64,
    /// forwarded / offered.
    pub delivery: f64,
    /// Peak resident set (VmHWM), kB — the O(1)-memory proxy. 0 when
    /// /proc is unavailable.
    pub peak_rss_kb: u64,
    /// Frame buffers actually heap-allocated by the arena over the whole
    /// run; stays at the in-flight window size, independent of `packets`.
    pub arena_allocations: u64,
    /// Frame buffers leased (= packets generated).
    pub arena_leases: u64,
}

flexsfp_obs::impl_json_struct!(Report {
    packets,
    frame_len,
    flows,
    wall_s,
    mpps,
    forwarded,
    delivery,
    peak_rss_kb,
    arena_allocations,
    arena_leases
});

/// The §5.1 NAT module: 64 private→public mappings, translate on the
/// edge→optical direction.
fn nat_module() -> FlexSfp {
    let mut nat = StaticNat::new();
    for i in 0..FLOWS as u32 {
        nat.add_mapping(PRIVATE_BASE + i, PUBLIC_BASE + i)
            .expect("NAT population fits");
    }
    FlexSfp::new(ModuleConfig::default(), Box::new(nat))
}

/// Peak resident set size (VmHWM) in kB, or 0 where /proc is absent.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Run the throughput measurement over `packets` minimum-size frames.
pub fn run(packets: usize) -> Report {
    let mut module = nat_module();
    let arena = PacketArena::new();
    let stream = TraceBuilder::new(SEED)
        .flows(FLOWS)
        .src_base(PRIVATE_BASE)
        .sizes(SizeModel::Fixed(FRAME_LEN))
        .arrivals(ArrivalModel::Paced { utilization: 1.0 })
        .stream_pooled(packets, arena.clone());

    let t0 = Instant::now();
    let report = module.run_stream_with(
        stream.map(|p| SimPacket {
            arrival_ns: p.arrival_ns,
            direction: Direction::EdgeToOptical,
            frame: p.frame,
        }),
        |out| arena.recycle(out.frame),
    );
    let wall_s = t0.elapsed().as_secs_f64();

    let forwarded = report.forwarded.0 + report.forwarded.1;
    Report {
        packets: packets as u64,
        frame_len: FRAME_LEN as u64,
        flows: FLOWS as u64,
        wall_s,
        mpps: packets as f64 / wall_s / 1e6,
        forwarded,
        delivery: forwarded as f64 / report.offered.max(1) as f64,
        peak_rss_kb: peak_rss_kb(),
        arena_allocations: arena.allocations(),
        arena_leases: arena.leases(),
    }
}

/// Human-readable report.
pub fn render(r: &Report) -> String {
    let rows = vec![vec![
        render::grouped(r.packets),
        r.frame_len.to_string(),
        r.flows.to_string(),
        render::f(r.wall_s, 3),
        render::f(r.mpps, 3),
        render::f(r.delivery * 100.0, 2),
        render::grouped(r.peak_rss_kb),
        r.arena_allocations.to_string(),
    ]];
    format!(
        "perf: streaming NAT workload (simulator throughput)\n{}",
        render::table(
            &[
                "packets",
                "frame B",
                "flows",
                "wall s",
                "Mpps",
                "delivery %",
                "peak RSS kB",
                "arena allocs",
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_obs::json::{FromJson, ToJson, Value};

    #[test]
    fn measures_throughput_and_stays_allocation_free() {
        let r = run(20_000);
        assert_eq!(r.packets, 20_000);
        assert_eq!(r.forwarded, 20_000, "NAT at line rate forwards all");
        assert!((r.delivery - 1.0).abs() < 1e-9);
        assert!(r.mpps > 0.0);
        assert_eq!(r.arena_leases, 20_000);
        // O(1) memory: the arena never holds more than the in-flight
        // window of frames, no matter how long the trace is.
        assert!(
            r.arena_allocations <= 16,
            "arena allocated {} buffers",
            r.arena_allocations
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = run(5_000);
        let text = r.to_json().to_string_pretty();
        let back = Report::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn render_mentions_the_workload() {
        let r = run(2_000);
        let s = render(&r);
        assert!(s.contains("Mpps"));
        assert!(s.contains("NAT"));
    }
}
