//! Simulator-throughput baseline (`experiments perf`).
//!
//! Measures how fast the simulator itself runs — not the modeled
//! hardware — on the §5.1 NAT workload with 64-byte frames: packets
//! simulated per wall-clock second (Mpps), peak RSS as the memory proxy,
//! and the arena's allocation count as the O(1)-memory witness. The
//! whole run is streaming: frames are leased from a [`PacketArena`],
//! generated on the fly by [`TraceBuilder::stream_pooled`], pushed
//! through [`FlexSfp::run_stream_with`], and recycled from the sink, so
//! neither the trace nor the outputs are ever materialized and memory
//! stays constant in trace length.
//!
//! The workload runs with the PPE flow cache disabled (every packet
//! takes the full parse/match/apply slow path) and enabled (per-flow
//! memoized action plans). Each setting first runs an untimed
//! verification pass that folds every output packet — departure time,
//! egress interface, and frame bytes — into an FNV-1a digest, and the
//! run aborts if the two digests differ: the cache must be a pure
//! speedup, never a behavior change. The sharded multicore dataplane
//! ([`crate::shard`]) is held to the same standard — its reconciled
//! output stream must reproduce the serial digest exactly — before its
//! aggregate throughput is measured as `mpps_sharded`. Timing then
//! comes from separate measurement passes with a recycle-only sink,
//! repeated [`MEASURE_REPS`] times taking the minimum wall-clock —
//! interference on a shared host only ever inflates time, so the
//! minimum is the cleanest estimate of what the simulator costs.
//!
//! `BENCH_throughput.json` (written by the `perf` subcommand, committed
//! at the repo root) is the perf trajectory every optimization PR is
//! measured against.

use crate::render;
use crate::shard::{self, run_sharded, run_sharded_timed};
use flexsfp_apps::StaticNat;
use flexsfp_core::module::{FlexSfp, Interface, ModuleConfig, SimPacket, PPE_BATCH};
use flexsfp_obs::CacheStats;
use flexsfp_ppe::Direction;
use flexsfp_traffic::gen::ArrivalModel;
use flexsfp_traffic::{SizeModel, TraceBuilder};
use flexsfp_wire::PacketArena;
use std::time::Instant;

/// Packets in the full measurement run (§5.1 scale).
pub const FULL_PACKETS: usize = 2_000_000;
/// Packets in the `--quick` (CI) run.
pub const QUICK_PACKETS: usize = 200_000;
/// Packets in the `--trace` export pass: small enough that the
/// resulting chrome://tracing JSON stays readable in Perfetto.
pub const TRACE_PACKETS: usize = 50_000;
/// Sampling rate of the `--trace` export pass (1-in-N).
pub const TRACE_EVERY: u64 = 64;

/// Trace seed — same workload as the line-rate experiment.
const SEED: u64 = 0x51;
/// Flow count and NAT population.
const FLOWS: usize = 64;
/// Flow count of the high-flow variant (`mpps_64k_flows`): the flat
/// table and flow cache working set no longer fit in L1/L2, so this is
/// the measurement the cache-geometry and table-layout work is judged
/// by. The NAT table is provisioned at 2× (131 072 slots, ~50 % load).
pub const HIGH_FLOWS: usize = 65_536;
/// Table capacity backing the high-flow variant.
pub const HIGH_FLOW_TABLE: usize = 131_072;
/// Private source base (192.168.0.0).
const PRIVATE_BASE: u32 = 0xc0a8_0000;
/// Public pool base (101.64.0.0).
const PUBLIC_BASE: u32 = 0x6540_0000;
/// Frame length under test: minimum-size (worst-case packet rate).
const FRAME_LEN: usize = 60;

/// Per-packet wall-clock attribution across the four sharded-pipeline
/// stages, measured by [`shard::run_sharded_timed`] (engines inline,
/// messages through real batched rings) on a digest-verified pass.
/// Nanoseconds per offered packet; `dispatch` covers accounting, the
/// single fused [`flexsfp_ppe::FlowKey`] extraction, control
/// classification, and shard routing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageCycles {
    /// Dispatcher ns/packet.
    pub dispatch: f64,
    /// Ring transport ns/packet (batched push/pop).
    pub ring: f64,
    /// Shard engine ns/packet (the PPE work itself).
    pub shard: f64,
    /// Reconciler ns/packet (ordering window + release).
    pub reconcile: f64,
}

flexsfp_obs::impl_json_struct!(StageCycles {
    dispatch,
    ring,
    shard,
    reconcile
});

/// Host provenance recorded alongside every committed benchmark JSON,
/// so two baseline files are never compared without knowing whether
/// they came from the same class of machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostMeta {
    /// Logical cores visible to the process.
    pub cores: u64,
    /// CPU model string from `/proc/cpuinfo` (`"unknown"` elsewhere).
    pub cpu_model: String,
    /// The `FLEXSFP_THREADS` override in effect, empty when unset —
    /// it caps the sharded transport's worker threads, so a pinned
    /// value explains an otherwise surprising `mpps_sharded`.
    pub flexsfp_threads: String,
}

flexsfp_obs::impl_json_struct!(HostMeta {
    cores,
    cpu_model,
    flexsfp_threads
});

/// Capture the current host's provenance.
pub fn host_meta() -> HostMeta {
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    HostMeta {
        cores: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(0),
        cpu_model,
        flexsfp_threads: std::env::var("FLEXSFP_THREADS").unwrap_or_default(),
    }
}

/// One throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Packets simulated (per pass).
    pub packets: u64,
    /// Frame length offered (B, without FCS).
    pub frame_len: u64,
    /// Distinct flows (= NAT table population).
    pub flows: u64,
    /// Wall-clock for the cache-on streaming run (generation +
    /// simulation), s.
    pub wall_s: f64,
    /// Simulated packets per wall-clock second with the flow cache
    /// enabled, millions.
    pub mpps: f64,
    /// Same measurement with the flow cache disabled (full slow path).
    pub mpps_cache_off: f64,
    /// Independent re-measurement of the default configuration — flow
    /// cache on, flight recorder disarmed. The observability hooks
    /// (always-on windowed counters, the sampler branch) must leave
    /// this within measurement noise of `mpps`; CI enforces the ratio.
    pub mpps_tracing_off: f64,
    /// Same measurement with the flight recorder armed at 1-in-64
    /// sampling — what continuous postcard collection costs.
    pub mpps_tracing_on: f64,
    /// Aggregate throughput of the sharded multicore dataplane
    /// ([`crate::shard::run_sharded`]) at [`Report::shards`] shards,
    /// digest-verified identical to the serial run first. On a
    /// single-core host the dispatcher falls back to the inline
    /// transport, so this degrades to ~`mpps` minus dispatch overhead
    /// rather than lying about scaling.
    pub mpps_sharded: f64,
    /// Shard count the `mpps_sharded` measurement used.
    pub shards: u64,
    /// Serial cache-on throughput of the high-flow variant: the same
    /// paced minimum-frame workload over [`HIGH_FLOWS`] flows against a
    /// NAT provisioned at [`HIGH_FLOW_TABLE`] slots. Digest-verified
    /// cache-on vs cache-off first, like the base workload. The flat
    /// table's cache-geometry claim lives or dies here: at 64 flows
    /// every layout fits in L1, at 64 k flows only one-line-per-probe
    /// layouts stay fast.
    pub mpps_64k_flows: f64,
    /// Where the sharded pipeline's cycles go, per packet.
    pub stage_cycles: StageCycles,
    /// Flow-cache hit rate over the cache-on pass, 0..=1.
    pub cache_hit_rate: f64,
    /// FNV-1a digest (hex) over every output packet's departure time,
    /// egress interface, and frame bytes. Identical for both passes by
    /// construction — the run aborts otherwise.
    pub digest: String,
    /// Packets forwarded by the module.
    pub forwarded: u64,
    /// forwarded / offered.
    pub delivery: f64,
    /// Peak resident set (VmHWM), kB — the O(1)-memory proxy. 0 when
    /// /proc is unavailable.
    pub peak_rss_kb: u64,
    /// Frame buffers actually heap-allocated by the arena over the whole
    /// run; stays at the in-flight window size, independent of `packets`.
    pub arena_allocations: u64,
    /// Frame buffers leased (= packets generated).
    pub arena_leases: u64,
    /// The machine this baseline was measured on.
    pub host: HostMeta,
}

flexsfp_obs::impl_json_struct!(Report {
    packets,
    frame_len,
    flows,
    wall_s,
    mpps,
    mpps_cache_off,
    mpps_tracing_off,
    mpps_tracing_on,
    mpps_sharded,
    shards,
    mpps_64k_flows,
    stage_cycles,
    cache_hit_rate,
    digest,
    forwarded,
    delivery,
    peak_rss_kb,
    arena_allocations,
    arena_leases,
    host
});

/// The §5.1 NAT module: 64 private→public mappings, translate on the
/// edge→optical direction.
pub(crate) fn nat_module() -> FlexSfp {
    let mut nat = StaticNat::new();
    for i in 0..FLOWS as u32 {
        nat.add_mapping(PRIVATE_BASE + i, PUBLIC_BASE + i)
            .expect("NAT population fits");
    }
    FlexSfp::new(ModuleConfig::default(), Box::new(nat))
}

/// A NAT sized for the high-flow variant: `flows` mappings in a
/// `capacity`-slot table. At ~50 % load a few percent of the
/// population lands in full 4-way buckets; those subscribers miss and
/// pass untranslated, exactly like the hardware table would behave, so
/// the digest-verified passes still agree byte for byte.
fn nat_module_sized(flows: usize, capacity: usize) -> FlexSfp {
    let mut nat = StaticNat::with_capacity(capacity);
    for i in 0..flows as u32 {
        let _ = nat.add_mapping(PRIVATE_BASE.wrapping_add(i), PUBLIC_BASE.wrapping_add(i));
    }
    FlexSfp::new(ModuleConfig::default(), Box::new(nat))
}

/// Peak resident set size (VmHWM) in kB, or 0 where /proc is absent.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// 64-bit FNV-1a fold of `bytes` into `state`.
fn fnv1a(state: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *state ^= b as u64;
        *state = state.wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Timed measurement passes per cache setting; the minimum wall-clock
/// wins (host interference only ever slows a pass down).
const MEASURE_REPS: usize = 3;

/// The workload stream over a fresh module.
pub(crate) fn workload(packets: usize, arena: &PacketArena) -> impl Iterator<Item = SimPacket> {
    workload_flows(packets, FLOWS, arena)
}

/// The same paced minimum-frame stream over an arbitrary flow
/// population (the high-flow variant passes [`HIGH_FLOWS`]).
fn workload_flows(
    packets: usize,
    flows: usize,
    arena: &PacketArena,
) -> impl Iterator<Item = SimPacket> {
    TraceBuilder::new(SEED)
        .flows(flows)
        .src_base(PRIVATE_BASE)
        .sizes(SizeModel::Fixed(FRAME_LEN))
        .arrivals(ArrivalModel::Paced { utilization: 1.0 })
        .stream_pooled(packets, arena.clone())
        .map(|p| SimPacket {
            arrival_ns: p.arrival_ns,
            direction: Direction::EdgeToOptical,
            frame: p.frame,
        })
}

/// One verified (untimed, digesting) pass over the workload.
struct Verified {
    forwarded: u64,
    offered: u64,
    digest: u64,
    cache: CacheStats,
    arena_allocations: u64,
    arena_leases: u64,
}

/// Stream the workload with the flow cache on or off — and optionally
/// the flight recorder armed — folding every output packet into an
/// FNV-1a digest.
fn verify_pass(packets: usize, cache_on: bool, recorder: bool) -> Verified {
    let mut module = nat_module();
    module.app_mut().set_flow_cache(cache_on);
    if recorder {
        module.enable_flight_recorder(TRACE_EVERY, SEED, 256);
    }
    let arena = PacketArena::new();
    let mut digest = FNV_OFFSET;
    let report = module.run_stream_with(workload(packets, &arena), |out| {
        fnv1a(&mut digest, &out.departure_ns.to_le_bytes());
        fnv1a(
            &mut digest,
            &[matches!(out.egress, Interface::Optical) as u8],
        );
        fnv1a(&mut digest, &(out.frame.len() as u32).to_le_bytes());
        fnv1a(&mut digest, &out.frame);
        arena.recycle(out.frame);
    });
    Verified {
        forwarded: report.forwarded.0 + report.forwarded.1,
        offered: report.offered,
        digest,
        cache: module.app_mut().cache_stats().unwrap_or_default(),
        arena_allocations: arena.allocations(),
        arena_leases: arena.leases(),
    }
}

/// One digesting pass of the high-flow workload: [`HIGH_FLOWS`] flows
/// against a [`HIGH_FLOW_TABLE`]-slot NAT.
fn verify_pass_high(packets: usize, cache_on: bool) -> u64 {
    let mut module = nat_module_sized(HIGH_FLOWS, HIGH_FLOW_TABLE);
    module.app_mut().set_flow_cache(cache_on);
    let arena = PacketArena::new();
    let mut digest = FNV_OFFSET;
    module.run_stream_with(workload_flows(packets, HIGH_FLOWS, &arena), |out| {
        fnv1a(&mut digest, &out.departure_ns.to_le_bytes());
        fnv1a(
            &mut digest,
            &[matches!(out.egress, Interface::Optical) as u8],
        );
        fnv1a(&mut digest, &(out.frame.len() as u32).to_le_bytes());
        fnv1a(&mut digest, &out.frame);
        arena.recycle(out.frame);
    });
    digest
}

/// Best-of-[`MEASURE_REPS`] wall-clock for the high-flow workload,
/// cache on, recycle-only sink.
fn measure_pass_high(packets: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_REPS {
        let mut module = nat_module_sized(HIGH_FLOWS, HIGH_FLOW_TABLE);
        module.app_mut().set_flow_cache(true);
        let arena = PacketArena::new();
        let t0 = Instant::now();
        module.run_stream_with(workload_flows(packets, HIGH_FLOWS, &arena), |out| {
            arena.recycle(out.frame)
        });
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-[`MEASURE_REPS`] wall-clock for the workload with a
/// recycle-only sink.
fn measure_pass(packets: usize, cache_on: bool, recorder: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_REPS {
        let mut module = nat_module();
        module.app_mut().set_flow_cache(cache_on);
        if recorder {
            module.enable_flight_recorder(TRACE_EVERY, SEED, 256);
        }
        let arena = PacketArena::new();
        let t0 = Instant::now();
        module.run_stream_with(workload(packets, &arena), |out| arena.recycle(out.frame));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Upper bound on frame buffers a sharded run may hold in flight — the
/// sharded counterpart of the serial `arena_allocations ≤ 48` O(1)
/// witness. Constant in trace length by construction: up to one
/// reconciler barrier interval buffered awaiting watermarks (twice,
/// for heap plus dispatcher slack), both ring directions full, one
/// partial dispatch chunk and one PPE batch window per shard, plus
/// generator slack. Uses the threaded cadence `BARRIER_EVERY`, which
/// dominates the inline transport's tighter `INLINE_BARRIER_EVERY`,
/// so the bound holds for either transport.
pub fn sharded_arena_bound(shards: usize) -> u64 {
    2 * shard::BARRIER_EVERY
        + (shards as u64)
            * (2 * (shard::RING_CHUNKS * shard::CHUNK) as u64 + (shard::CHUNK + PPE_BATCH) as u64)
        + 64
}

/// A per-shard module in the measured default configuration: flow
/// cache on, flight recorder disarmed.
fn shard_module() -> FlexSfp {
    let mut module = nat_module();
    module.app_mut().set_flow_cache(true);
    module
}

/// One verified (untimed, digesting) sharded pass: same digest fold as
/// [`verify_pass`], over the reconciled output stream.
fn verify_pass_sharded(packets: usize, shards: usize) -> Verified {
    let arena = PacketArena::new();
    let mut digest = FNV_OFFSET;
    let run = run_sharded(
        shards,
        &ModuleConfig::default(),
        |_| shard_module(),
        workload(packets, &arena),
        |out| {
            fnv1a(&mut digest, &out.departure_ns.to_le_bytes());
            fnv1a(
                &mut digest,
                &[matches!(out.egress, Interface::Optical) as u8],
            );
            fnv1a(&mut digest, &(out.frame.len() as u32).to_le_bytes());
            fnv1a(&mut digest, &out.frame);
            arena.recycle(out.frame);
        },
    );
    Verified {
        forwarded: run.report.forwarded.0 + run.report.forwarded.1,
        offered: run.report.offered,
        digest,
        cache: run.snapshot.cache,
        arena_allocations: arena.allocations(),
        arena_leases: arena.leases(),
    }
}

/// Best-of-[`MEASURE_REPS`] wall-clock for the sharded run with a
/// recycle-only sink.
fn measure_pass_sharded(packets: usize, shards: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_REPS {
        let arena = PacketArena::new();
        let t0 = Instant::now();
        run_sharded(
            shards,
            &ModuleConfig::default(),
            |_| shard_module(),
            workload(packets, &arena),
            |out| arena.recycle(out.frame),
        );
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-[`MEASURE_REPS`] instrumented pass: per-stage wall-clock
/// attribution from [`run_sharded_timed`], taking the breakdown of the
/// rep with the lowest total (same minimum-wall-clock rationale as the
/// throughput passes), normalized to ns per offered packet.
fn measure_pass_staged(packets: usize, shards: usize) -> StageCycles {
    let mut best_total = u64::MAX;
    let mut best = StageCycles::default();
    for _ in 0..MEASURE_REPS {
        let arena = PacketArena::new();
        let (_, stage) = run_sharded_timed(
            shards,
            &ModuleConfig::default(),
            |_| shard_module(),
            workload(packets, &arena),
            |out| arena.recycle(out.frame),
        );
        let total = stage.dispatch_ns + stage.ring_ns + stage.shard_ns + stage.reconcile_ns;
        if total < best_total {
            best_total = total;
            let per = |ns: u64| ns as f64 / packets as f64;
            best = StageCycles {
                dispatch: per(stage.dispatch_ns),
                ring: per(stage.ring_ns),
                shard: per(stage.shard_ns),
                reconcile: per(stage.reconcile_ns),
            };
        }
    }
    best
}

/// Run the throughput measurement over `packets` minimum-size frames:
/// digest-verified passes first, then timed passes, cache-off and
/// cache-on, and finally the sharded multicore dataplane at `shards`
/// shards.
///
/// # Panics
///
/// Panics if any pair of verification passes produces different output
/// digests — a correctness failure in the flow cache, the flight
/// recorder or the shard reconciler, not a measurement artifact. The
/// recorder samples 1-in-64 packets during its verified pass and must
/// be a pure observer: same departure times, same egress, same bytes.
/// The sharded pass must reproduce the serial output stream — in sink
/// order — exactly. Also panics if either the serial or the sharded
/// pass heap-allocates more arena buffers than its O(1) in-flight
/// bound (48 serial, [`sharded_arena_bound`] sharded) — the memory
/// regression gate CI runs through this path.
pub fn run(packets: usize, shards: usize) -> Report {
    let shards = shards.max(1);
    let off = verify_pass(packets, false, false);
    let on = verify_pass(packets, true, false);
    assert_eq!(
        on.digest, off.digest,
        "flow cache changed observable output (cache-on {:016x} vs cache-off {:016x})",
        on.digest, off.digest
    );
    let traced = verify_pass(packets, true, true);
    assert_eq!(
        traced.digest, on.digest,
        "flight recorder changed observable output (recorder-on {:016x} vs recorder-off {:016x})",
        traced.digest, on.digest
    );
    let sharded = verify_pass_sharded(packets, shards);
    assert_eq!(
        sharded.digest, on.digest,
        "sharded dataplane changed observable output at {} shards ({:016x} vs serial {:016x})",
        shards, sharded.digest, on.digest
    );
    assert_eq!(sharded.forwarded, on.forwarded);
    assert_eq!(sharded.offered, on.offered);
    // The instrumented pipeline is the real pipeline with clocks in
    // it: it must reproduce the digest too, and the dataplane-only
    // workload must cross it without a single frame copy.
    {
        let arena = PacketArena::new();
        let mut timed_digest = FNV_OFFSET;
        let (timed, _) = run_sharded_timed(
            shards,
            &ModuleConfig::default(),
            |_| shard_module(),
            workload(packets, &arena),
            |out| {
                fnv1a(&mut timed_digest, &out.departure_ns.to_le_bytes());
                fnv1a(
                    &mut timed_digest,
                    &[matches!(out.egress, Interface::Optical) as u8],
                );
                fnv1a(&mut timed_digest, &(out.frame.len() as u32).to_le_bytes());
                fnv1a(&mut timed_digest, &out.frame);
                arena.recycle(out.frame);
            },
        );
        assert_eq!(
            timed_digest, on.digest,
            "instrumented sharded pipeline changed observable output ({timed_digest:016x} vs serial {:016x})",
            on.digest
        );
        assert_eq!(
            timed.frame_copies, 0,
            "dataplane workload must be zero-copy, saw {} copies",
            timed.frame_copies
        );
    }
    // O(1)-memory gates: in-flight frame windows, not trace length.
    assert!(
        on.arena_allocations <= 48,
        "serial pass allocated {} arena buffers (bound 48)",
        on.arena_allocations
    );
    assert!(
        sharded.arena_allocations <= sharded_arena_bound(shards),
        "sharded pass allocated {} arena buffers (bound {} at {} shards)",
        sharded.arena_allocations,
        sharded_arena_bound(shards),
        shards
    );
    // High-flow variant: cache on/off must agree at 64 k flows too
    // (full buckets, set-conflict evictions) before it is timed.
    let high_on = verify_pass_high(packets, true);
    let high_off = verify_pass_high(packets, false);
    assert_eq!(
        high_on, high_off,
        "flow cache changed observable output at {HIGH_FLOWS} flows \
         ({high_on:016x} vs {high_off:016x})"
    );
    let off_wall_s = measure_pass(packets, false, false);
    let wall_s = measure_pass(packets, true, false);
    // Independent re-measurement of the identical recorder-disarmed
    // configuration: its delta from `mpps` is pure run-to-run noise,
    // which is exactly the budget CI holds the sampler branch to.
    let tracing_off_wall_s = measure_pass(packets, true, false);
    let tracing_on_wall_s = measure_pass(packets, true, true);
    let sharded_wall_s = measure_pass_sharded(packets, shards);
    let high_wall_s = measure_pass_high(packets);
    let stage_cycles = measure_pass_staged(packets, shards);

    Report {
        packets: packets as u64,
        frame_len: FRAME_LEN as u64,
        flows: FLOWS as u64,
        wall_s,
        mpps: packets as f64 / wall_s / 1e6,
        mpps_cache_off: packets as f64 / off_wall_s / 1e6,
        mpps_tracing_off: packets as f64 / tracing_off_wall_s / 1e6,
        mpps_tracing_on: packets as f64 / tracing_on_wall_s / 1e6,
        mpps_sharded: packets as f64 / sharded_wall_s / 1e6,
        shards: shards as u64,
        mpps_64k_flows: packets as f64 / high_wall_s / 1e6,
        stage_cycles,
        cache_hit_rate: on.cache.hit_rate(),
        digest: format!("{:016x}", on.digest),
        forwarded: on.forwarded,
        delivery: on.forwarded as f64 / on.offered.max(1) as f64,
        peak_rss_kb: peak_rss_kb(),
        arena_allocations: on.arena_allocations,
        arena_leases: on.arena_leases,
        host: host_meta(),
    }
}

/// Run a flight-recorder-armed pass over the workload and render the
/// sampled postcards as chrome://tracing trace-event JSON, loadable
/// directly in Perfetto (`experiments perf --trace <file>`).
pub fn chrome_trace(packets: usize, every: u64) -> flexsfp_obs::json::Value {
    let mut module = nat_module();
    // Size the ring for the expected sample count so no postcard is
    // overwritten before the drain.
    let capacity = packets / every.max(1) as usize + 64;
    module.enable_flight_recorder(every, SEED, capacity);
    let arena = PacketArena::new();
    module.run_stream_with(workload(packets, &arena), |out| arena.recycle(out.frame));
    let records = module.drain_flight_records();
    let config = ModuleConfig::default();
    let cycle_ns = config.ppe_clock.period_fs() as f64 / 1e6;
    flexsfp_obs::trace::chrome_trace(&config.id, &records, cycle_ns)
}

/// Human-readable report.
pub fn render(r: &Report) -> String {
    let rows = vec![vec![
        render::grouped(r.packets),
        r.frame_len.to_string(),
        r.flows.to_string(),
        render::f(r.wall_s, 3),
        render::f(r.mpps, 3),
        render::f(r.mpps_cache_off, 3),
        render::f(r.mpps_tracing_off, 3),
        render::f(r.mpps_tracing_on, 3),
        render::f(r.mpps_sharded, 3),
        r.shards.to_string(),
        render::f(r.mpps_64k_flows, 3),
        render::f(r.cache_hit_rate * 100.0, 2),
        render::f(r.delivery * 100.0, 2),
        render::grouped(r.peak_rss_kb),
        r.arena_allocations.to_string(),
    ]];
    let s = &r.stage_cycles;
    format!(
        "perf: streaming NAT workload (simulator throughput; output digest {} identical cache-on/off, recorder-on/off and serial/sharded)\n\
         host: {} cores, {}\n\
         stage ns/pkt: dispatch {} | ring {} | shard {} | reconcile {}\n{}",
        r.digest,
        r.host.cores,
        r.host.cpu_model,
        render::f(s.dispatch, 1),
        render::f(s.ring, 1),
        render::f(s.shard, 1),
        render::f(s.reconcile, 1),
        render::table(
            &[
                "packets",
                "frame B",
                "flows",
                "wall s",
                "Mpps",
                "Mpps (no cache)",
                "Mpps (rec off)",
                "Mpps (rec 1/64)",
                "Mpps (sharded)",
                "shards",
                "Mpps (64k flows)",
                "cache hit %",
                "delivery %",
                "peak RSS kB",
                "arena allocs",
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_obs::json::{FromJson, ToJson, Value};

    #[test]
    fn measures_throughput_and_stays_allocation_free() {
        let r = run(20_000, 2);
        assert_eq!(r.packets, 20_000);
        assert_eq!(r.forwarded, 20_000, "NAT at line rate forwards all");
        assert!((r.delivery - 1.0).abs() < 1e-9);
        assert!(r.mpps > 0.0);
        assert!(r.mpps_cache_off > 0.0);
        assert!(r.mpps_tracing_off > 0.0);
        assert!(r.mpps_tracing_on > 0.0);
        assert!(r.mpps_sharded > 0.0);
        assert_eq!(r.shards, 2);
        // The stage attribution accounts for real time: the shard
        // stage (the PPE work) dominates a healthy pipeline and none
        // of the stages may be negative.
        let s = &r.stage_cycles;
        assert!(s.shard > 0.0, "shard stage unmeasured");
        assert!(s.dispatch >= 0.0 && s.ring >= 0.0 && s.reconcile >= 0.0);
        assert_eq!(r.arena_leases, 20_000);
        // O(1) memory: the arena never holds more than the in-flight
        // window of frames — one PPE batch plus generator slack — no
        // matter how long the trace is. run() itself asserts this (48
        // serial, sharded_arena_bound() for the sharded pass); the
        // committed report re-states the serial bound for CI.
        assert!(
            r.arena_allocations <= 48,
            "arena allocated {} buffers",
            r.arena_allocations
        );
    }

    #[test]
    fn cache_pass_hits_after_first_packet_per_flow() {
        // 20 k packets over 64 flows: everything after the first packet
        // of each flow replays a memoized plan. run() itself asserts
        // digest equality between the passes.
        let r = run(20_000, 1);
        assert!(
            r.cache_hit_rate > 0.99,
            "hit rate {} too low for a 64-flow workload",
            r.cache_hit_rate
        );
        assert_eq!(r.digest.len(), 16, "digest is a 64-bit hex string");
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = run(5_000, 1);
        let text = r.to_json().to_string_pretty();
        let back = Report::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn sharded_bound_is_constant_in_trace_length() {
        // The bound depends on shard count and the pipeline's constant
        // windows only — nothing about it may scale with packets.
        assert!(sharded_arena_bound(1) < sharded_arena_bound(8));
        assert!(sharded_arena_bound(8) < 100_000);
    }

    #[test]
    fn chrome_trace_export_is_valid_trace_event_json() {
        let trace = chrome_trace(5_000, 8);
        let object = trace.as_object().unwrap();
        let events = object["traceEvents"].as_array().unwrap();
        // Metadata event plus at least one packet slice; 1-in-8 over
        // 5 000 packets samples far more than that.
        assert!(events.len() > 100, "only {} trace events", events.len());
        for ev in events {
            let ph = ev.as_object().unwrap()["ph"].as_str().unwrap();
            assert!(ph == "X" || ph == "M");
        }
        // Valid JSON end to end.
        let text = trace.to_string_pretty();
        assert_eq!(Value::parse(&text).unwrap(), trace);
    }

    #[test]
    fn render_mentions_the_workload() {
        let r = run(2_000, 1);
        let s = render(&r);
        assert!(s.contains("Mpps"));
        assert!(s.contains("NAT"));
        assert!(s.contains("cache"));
    }
}
