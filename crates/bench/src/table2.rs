//! Table 2: published FPGA designs normalized to LE equivalents and
//! fit-checked against the FlexSFP's MPF200T.

use crate::render;
use flexsfp_cost::designs::{fit_check, DesignFit};
use flexsfp_fabric::resources::Device;

/// The report: per-design fits plus the reference device row.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Fit rows.
    pub designs: Vec<DesignFit>,
    /// Reference device name.
    pub device: String,
    /// Device logic (LE).
    pub device_le: u64,
    /// Device BRAM (kbit).
    pub device_bram_kbits: u64,
}

flexsfp_obs::impl_json_struct!(Report {
    designs,
    device,
    device_le,
    device_bram_kbits
});

/// Regenerate Table 2.
pub fn run() -> Report {
    let device = Device::mpf200t();
    Report {
        designs: fit_check(&device),
        device: "FlexSFP (MPF200T)".into(),
        device_le: device.logic_elements,
        device_bram_kbits: device.bram_kbits,
    }
}

/// Render in the paper's layout plus a fit verdict column (our added
/// value over the printed table).
pub fn render(r: &Report) -> String {
    let mut rows: Vec<Vec<String>> = r
        .designs
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                format!("~{} k LE", d.logic_le / 1000),
                render::grouped(d.bram_kbits),
                if d.fits() {
                    "fits".into()
                } else if d.logic_fits {
                    "BRAM exceeds".into()
                } else {
                    "logic exceeds".into()
                },
            ]
        })
        .collect();
    rows.push(vec![
        r.device.clone(),
        format!("{} k LE", r.device_le / 1000),
        render::grouped(r.device_bram_kbits),
        "(capacity)".into(),
    ]);
    format!(
        "Table 2: FPGA resource usage of key designs (logic normalized to 4-input LE, BRAM in kbit)\n{}",
        render::table(&["Use case", "Logic", "BRAM", "Fit on MPF200T"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_designs_plus_device() {
        let r = run();
        assert_eq!(r.designs.len(), 4);
        assert_eq!(r.device_le, 192_000);
        assert_eq!(r.device_bram_kbits, 13_300);
    }

    #[test]
    fn verdicts_match_paper_argument() {
        let r = run();
        let fits: Vec<bool> = r.designs.iter().map(|d| d.fits()).collect();
        // Only hXDP (index 2) fits outright.
        assert_eq!(fits, vec![false, false, true, false]);
    }

    #[test]
    fn render_matches_table2_numbers() {
        let text = render(&run());
        assert!(
            text.contains("~114 k LE") || text.contains("~115 k LE"),
            "{text}"
        );
        assert!(text.contains("~415 k LE") || text.contains("~416 k LE"));
        assert!(text.contains("hXDP"));
        assert!(text.contains("13 300"));
    }
}
