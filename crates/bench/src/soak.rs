//! City-soak SLO workload (`experiments soak`).
//!
//! The flow-scale counterpart of [`crate::slo`]: instead of 64 flows at
//! a steady load, this streams a metro-ISP aggregation port through a
//! whole synthetic day — a [`SUBSCRIBERS`]-flow CGNAT population riding
//! a diurnal load curve (overnight trough → morning ramp → daytime
//! plateau → evening peak), a flash-crowd surge with microburst
//! interludes, and a volumetric DDoS phase from an unmapped source
//! block — all composed from [`flexsfp_traffic::profiles`] presets. NAT
//! table churn is injected in-band at every phase boundary: batches of
//! authenticated control frames remap and delete subscriber mappings
//! mid-run, so the microflow cache is repeatedly epoch-invalidated at
//! city scale while packets keep flowing.
//!
//! Every phase is *paced*: at utilization ≤ 1 the PPE service time
//! never exceeds the wire time, so the server never backlogs and each
//! departure depends only on the packet's own arrival and length. That
//! is the property that keeps the sharded dataplane digest-identical
//! to serial, and the soak asserts exactly that: the serial pass and
//! the [`crate::shard::run_sharded`] pass must fold every output
//! packet to the same FNV-1a digest, control churn included.
//! Microbursts ride in a burst-only interlude (the [`flash_crowd`]
//! preset with a zero-length paced stream) so their line-rate 1514 B
//! frames never overlap paced traffic — overlap would queue the
//! server and make departures shard-dependent by design, not by bug.
//!
//! The run is judged twice:
//!
//! * **per window** — an [`SloSpec`] with a 100 µs p99.9 bound and a
//!   *zero* unexplained-drop budget over 10 ms windows. The per-window
//!   cache floor is 0: at 256 k flows, windows dominated by first-touch
//!   lookups legitimately sit near 0 % and are not a defect;
//! * **over the lifetime** — the aggregate cache hit rate must clear
//!   [`LIFETIME_CACHE_FLOOR`], which is where cache-geometry
//!   regressions at city scale actually show up.
//!
//! `BENCH_soak.json` (written by the `soak` subcommand, committed at
//! the repo root) records the verdict, the throughput (`mpps_soak`),
//! the table occupancy and the host it was measured on.
//!
//! [`flash_crowd`]: flexsfp_traffic::profiles::flash_crowd

use crate::perf::{self, host_meta, HostMeta};
use crate::render;
use crate::shard::run_sharded;
use flexsfp_apps::StaticNat;
use flexsfp_core::control::{ControlPlane, ControlRequest, CtlTableOp, CONTROL_PORT};
use flexsfp_core::module::{FlexSfp, Interface, ModuleConfig, SimPacket};
use flexsfp_obs::slo::{SloReport, SloSpec};
use flexsfp_obs::TableTelemetry;
use flexsfp_ppe::Direction;
use flexsfp_traffic::{profiles, TraceBuilder, TraceStream};
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::{MacAddr, PacketArena};
use std::collections::VecDeque;
use std::time::Instant;

/// Subscriber flow population — a city, not a rack (§2.1 aggregation).
pub const SUBSCRIBERS: usize = 262_144;
/// NAT exact-match table capacity backing the population (~50 % load;
/// a few percent of inserts land in full 4-way buckets and those
/// subscribers deterministically pass untranslated, as hardware would).
pub const TABLE_CAPACITY: usize = 524_288;
/// Distinct sources in the DDoS phase (all unmapped: pure miss traffic).
pub const ATTACK_SOURCES: usize = 16_384;
/// Packets in the full soak.
pub const FULL_PACKETS: usize = 2_000_000;
/// Packets in the `--quick` (CI) soak. The flow population does not
/// shrink with `--quick` — the whole point is table pressure.
pub const QUICK_PACKETS: usize = 500_000;
/// Aggregate cache hit rate the lifetime gate requires. Generous on a
/// healthy run (the full soak sits far above it) but a cache-geometry
/// regression that thrashes at 256 k flows falls straight through it.
pub const LIFETIME_CACHE_FLOOR: f64 = 0.10;

/// Telemetry window width: 10 ms, wide enough that the multi-second
/// simulated day fits the ring with room to spare.
const WINDOW_NS: u64 = 10_000_000;
/// Live windows kept for SLO evaluation.
const WINDOW_CAPACITY: usize = 1024;
/// Idle gap between phases, ns — keeps churn frames and the next
/// phase's paced stream from ever sharing the wire.
const PHASE_GAP_NS: u64 = 100_000;
/// Spacing between churn control frames, ns (≫ their service time, so
/// the control batch itself never backlogs the server).
const CTRL_SPACING_NS: u64 = 1_000;
/// Mappings remapped to a new public address per phase boundary.
const CHURN_REMAPS: usize = 48;
/// Mappings deleted per phase boundary.
const CHURN_DELETES: usize = 16;
/// Phase boundaries carrying churn (phases − 1).
const BOUNDARIES: usize = 6;

/// Private subscriber base — must match
/// [`profiles::metro_subscribers`]'s source block.
const SUB_BASE: u32 = 0x0a64_0000;
/// Public pool base for the initial NAT population.
const PUB_BASE: u32 = 0x6540_0000;
/// Offset into a second public block used by boundary remaps.
const REMAP_OFFSET: u32 = 0x0010_0000;

/// The per-window spec the soak is held to: 100 µs p99.9, *zero*
/// unexplained drops (nothing in a paced soak may overflow the FIFO),
/// and no per-window cache floor — first-touch windows at city scale
/// legitimately sit near 0 %. The cache is gated over the lifetime by
/// [`LIFETIME_CACHE_FLOOR`] instead.
pub fn soak_spec() -> SloSpec {
    SloSpec {
        p999_latency_ns: 100_000,
        max_unexplained_drop_rate: 0.0,
        min_cache_hit_rate: 0.0,
    }
}

/// Result of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Packets offered (paced phases + microbursts + control frames).
    pub packets: u64,
    /// Subscriber flow population.
    pub flows: u64,
    /// Distinct DDoS sources.
    pub attack_sources: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Wall-clock of the timed serial pass, s.
    pub wall_s: f64,
    /// Simulated packets per wall-clock second, millions (timed pass).
    pub mpps_soak: f64,
    /// Simulated span of the soak, ns.
    pub duration_ns: u64,
    /// Lifetime p99.9 forwarding latency, ns.
    pub p999_latency_ns: f64,
    /// Lifetime microflow-cache hit rate, 0..=1.
    pub cache_hit_rate: f64,
    /// The lifetime floor `cache_hit_rate` was gated against.
    pub cache_hit_floor: f64,
    /// Infrastructure drops (FIFO overflow + link + unsorted) — must
    /// be zero in a paced soak.
    pub unexplained_drops: u64,
    /// Application-verdict drops (explained; policy, not infra).
    pub app_drops: u64,
    /// Churn control frames handled (phase boundaries × batch size).
    pub control_handled: u64,
    /// NAT exact-match table geometry and counters after the run.
    pub table: TableTelemetry,
    /// Table occupancy as a fraction of capacity.
    pub table_load_factor: f64,
    /// Telemetry window width used for the SLO evaluation, ns.
    pub window_width_ns: u64,
    /// Shard count of the digest-verified sharded pass.
    pub shards: u64,
    /// FNV-1a digest (hex) over every output packet; the sharded pass
    /// must reproduce it exactly or the run aborts.
    pub digest: String,
    /// Arena buffers heap-allocated by the serial pass (O(1) witness).
    pub arena_allocations: u64,
    /// The per-window spec evaluated.
    pub spec: SloSpec,
    /// Per-window verdicts and breaches.
    pub report: SloReport,
    /// True when the windows pass `spec` *and* the lifetime cache rate
    /// clears `cache_hit_floor` *and* no drop is unexplained.
    pub healthy: bool,
    /// The machine the timed pass ran on.
    pub host: HostMeta,
}

flexsfp_obs::impl_json_struct!(Outcome {
    packets,
    flows,
    attack_sources,
    forwarded,
    wall_s,
    mpps_soak,
    duration_ns,
    p999_latency_ns,
    cache_hit_rate,
    cache_hit_floor,
    unexplained_drops,
    app_drops,
    control_handled,
    table,
    table_load_factor,
    window_width_ns,
    shards,
    digest,
    arena_allocations,
    spec,
    report,
    healthy,
    host
});

/// 64-bit FNV-1a fold of `bytes` into `state`.
fn fnv1a(state: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *state ^= b as u64;
        *state = state.wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One diurnal phase: a preset builder and how many paced packets of
/// it the soak draws (0 = burst-only interlude).
struct Phase {
    builder: TraceBuilder,
    count: usize,
}

/// The synthetic day, as fractions of the packet budget. The evening
/// phase absorbs integer-division remainders so the paced total is
/// exactly `packets`.
fn phases(packets: usize, subscribers: usize, attack_sources: usize) -> Vec<Phase> {
    let pct = |p: usize| packets * p / 100;
    let evening = packets - pct(10) - pct(15) - pct(25) - pct(20) - pct(15);
    vec![
        // Overnight trough.
        Phase {
            builder: profiles::metro_subscribers(0xa1, subscribers, 0.10),
            count: pct(10),
        },
        // Morning ramp.
        Phase {
            builder: profiles::metro_subscribers(0xa2, subscribers, 0.40),
            count: pct(15),
        },
        // Daytime plateau.
        Phase {
            builder: profiles::metro_subscribers(0xa3, subscribers, 0.60),
            count: pct(25),
        },
        // Flash-crowd surge: the whole city piles on, still paced.
        Phase {
            builder: profiles::metro_subscribers(0xa4, subscribers, 0.95),
            count: pct(20),
        },
        // Burst interlude: the flash_crowd preset with a zero-length
        // paced stream yields only its pre-materialized line-rate
        // microbursts, which therefore never overlap paced traffic —
        // the condition that keeps sharded departures serial-identical.
        Phase {
            builder: profiles::flash_crowd(0xa5, subscribers.min(4_096)),
            count: 0,
        },
        // Volumetric DDoS from an unmapped block: pure table misses at
        // the worst-case packet rate, forwarded untranslated.
        Phase {
            builder: profiles::ddos_burst(0xa6, attack_sources),
            count: pct(15),
        },
        // Evening peak.
        Phase {
            builder: profiles::metro_subscribers(0xa7, subscribers, 0.70),
            count: evening,
        },
    ]
}

/// The churn batch injected at phase boundary `boundary`: remap
/// [`CHURN_REMAPS`] subscribers into a fresh public block, then delete
/// [`CHURN_DELETES`] more. Every op bumps the microflow-cache epoch,
/// so each boundary wipes every memoized plan in the module.
fn churn_ops(boundary: usize, subscribers: usize) -> Vec<CtlTableOp> {
    let base = boundary * (CHURN_REMAPS + CHURN_DELETES);
    let key = |j: usize| {
        SUB_BASE
            .wrapping_add(((base + j) % subscribers) as u32)
            .to_be_bytes()
            .to_vec()
    };
    let mut ops = Vec::with_capacity(CHURN_REMAPS + CHURN_DELETES);
    for j in 0..CHURN_REMAPS {
        ops.push(CtlTableOp::Insert {
            table: 0,
            key: key(j),
            value: (PUB_BASE + REMAP_OFFSET)
                .wrapping_add(((base + j) % subscribers) as u32)
                .to_be_bytes()
                .to_vec(),
        });
    }
    for j in 0..CHURN_DELETES {
        ops.push(CtlTableOp::Delete {
            table: 0,
            key: key(CHURN_REMAPS + j),
        });
    }
    ops
}

/// Build an authenticated in-band control frame carrying a table op.
fn control_frame(config: &ModuleConfig, op: CtlTableOp) -> Vec<u8> {
    let payload = ControlPlane::encode_request(&config.auth_key, &ControlRequest::Table(op));
    PacketBuilder::eth_ipv4_udp(
        config.mgmt_mac,
        MacAddr([0xee; 6]),
        0x0a00_0101,
        config.mgmt_ip,
        40_000,
        CONTROL_PORT,
        &payload,
    )
}

/// Streams the phased day in arrival order with O(1) memory: one live
/// [`TraceStream`] at a time, each phase offset past the last arrival
/// seen, churn control frames emitted in the inter-phase gap.
struct PhasedStream {
    phases: std::vec::IntoIter<Phase>,
    current: Option<TraceStream>,
    ctrl: VecDeque<SimPacket>,
    config: ModuleConfig,
    subscribers: usize,
    boundary: usize,
    started: bool,
    offset_ns: u64,
    last_arrival_ns: u64,
    arena: PacketArena,
}

impl Iterator for PhasedStream {
    type Item = SimPacket;

    fn next(&mut self) -> Option<SimPacket> {
        loop {
            if let Some(p) = self.ctrl.pop_front() {
                self.last_arrival_ns = self.last_arrival_ns.max(p.arrival_ns);
                return Some(p);
            }
            if let Some(stream) = self.current.as_mut() {
                if let Some(tp) = stream.next() {
                    let arrival_ns = self.offset_ns + tp.arrival_ns;
                    self.last_arrival_ns = self.last_arrival_ns.max(arrival_ns);
                    return Some(SimPacket {
                        arrival_ns,
                        direction: Direction::EdgeToOptical,
                        frame: tp.frame,
                    });
                }
                self.current = None;
            }
            let phase = self.phases.next()?;
            if self.started {
                // Phase boundary: schedule the churn batch in the gap,
                // spaced so the control frames never backlog the server.
                let mut t = self.last_arrival_ns;
                for op in churn_ops(self.boundary, self.subscribers) {
                    t += CTRL_SPACING_NS;
                    self.ctrl.push_back(SimPacket {
                        arrival_ns: t,
                        direction: Direction::EdgeToOptical,
                        frame: control_frame(&self.config, op),
                    });
                }
                self.boundary += 1;
                self.offset_ns = t + PHASE_GAP_NS;
            }
            self.started = true;
            self.current = Some(phase.builder.stream_pooled(phase.count, self.arena.clone()));
        }
    }
}

/// The whole soak stream over `arena`.
fn stream(
    packets: usize,
    subscribers: usize,
    attack_sources: usize,
    arena: &PacketArena,
) -> PhasedStream {
    PhasedStream {
        phases: phases(packets, subscribers, attack_sources).into_iter(),
        current: None,
        ctrl: VecDeque::new(),
        config: ModuleConfig::default(),
        subscribers,
        boundary: 0,
        started: false,
        offset_ns: 0,
        last_arrival_ns: 0,
        arena: arena.clone(),
    }
}

/// A NAT module provisioned for the city: `subscribers` mappings in a
/// `capacity`-slot table, flow cache on. Inserts landing in full 4-way
/// buckets are tolerated — those subscribers pass untranslated,
/// deterministically, in serial and sharded alike.
fn nat_module(subscribers: usize, capacity: usize) -> FlexSfp {
    let mut nat = StaticNat::with_capacity(capacity);
    for i in 0..subscribers as u32 {
        let _ = nat.add_mapping(SUB_BASE.wrapping_add(i), PUB_BASE.wrapping_add(i));
    }
    let mut module = FlexSfp::new(ModuleConfig::default(), Box::new(nat));
    module.app_mut().set_flow_cache(true);
    module
}

/// Run the full soak at the committed scale: [`SUBSCRIBERS`] flows,
/// [`ATTACK_SOURCES`] DDoS sources, [`TABLE_CAPACITY`] table slots.
///
/// # Panics
///
/// Panics if the sharded pass does not reproduce the serial digest bit
/// for bit, if forwarded/offered counts diverge, or if either pass
/// heap-allocates more arena buffers than its O(1) in-flight bound —
/// those are correctness failures, not soak verdicts. SLO breaches and
/// a missed lifetime cache floor are verdicts: they make the returned
/// [`Outcome`] unhealthy (and the CLI exit nonzero) without panicking.
pub fn run(packets: usize, shards: usize) -> Outcome {
    run_scaled(packets, shards, SUBSCRIBERS, ATTACK_SOURCES, TABLE_CAPACITY)
}

/// [`run`] with an explicit scale, so tests can soak a small town in
/// milliseconds while CI soaks the city.
fn run_scaled(
    packets: usize,
    shards: usize,
    subscribers: usize,
    attack_sources: usize,
    table_capacity: usize,
) -> Outcome {
    let shards = shards.max(1);
    let spec = soak_spec();

    // Serial verification pass: digest every output, evaluate the SLO
    // windows, read the table and cache telemetry.
    let mut module = nat_module(subscribers, table_capacity);
    module.configure_windows(WINDOW_NS, WINDOW_CAPACITY);
    let arena = PacketArena::new();
    let mut digest = FNV_OFFSET;
    let report = module.run_stream_with(
        stream(packets, subscribers, attack_sources, &arena),
        |out| {
            fnv1a(&mut digest, &out.departure_ns.to_le_bytes());
            fnv1a(
                &mut digest,
                &[matches!(out.egress, Interface::Optical) as u8],
            );
            fnv1a(&mut digest, &(out.frame.len() as u32).to_le_bytes());
            fnv1a(&mut digest, &out.frame);
            arena.recycle(out.frame);
        },
    );
    let arena_allocations = arena.allocations();
    // The serial perf bound is 48; the soak adds burst and control
    // frames built outside the arena, so allow a little slack while
    // still pinning O(1) in trace length.
    assert!(
        arena_allocations <= 64,
        "serial soak allocated {arena_allocations} arena buffers (bound 64)"
    );
    assert_eq!(
        report.control_handled,
        (BOUNDARIES * (CHURN_REMAPS + CHURN_DELETES)) as u64,
        "every churn frame must be handled"
    );
    let slo_report = flexsfp_obs::slo::evaluate(&spec, module.windows());
    let cache = module.app_mut().cache_stats().unwrap_or_default();
    let snapshot = module.telemetry_snapshot();

    // Sharded verification pass: byte-identical output or abort.
    {
        let arena = PacketArena::new();
        let mut sharded_digest = FNV_OFFSET;
        let run = run_sharded(
            shards,
            &ModuleConfig::default(),
            |_| nat_module(subscribers, table_capacity),
            stream(packets, subscribers, attack_sources, &arena),
            |out| {
                fnv1a(&mut sharded_digest, &out.departure_ns.to_le_bytes());
                fnv1a(
                    &mut sharded_digest,
                    &[matches!(out.egress, Interface::Optical) as u8],
                );
                fnv1a(&mut sharded_digest, &(out.frame.len() as u32).to_le_bytes());
                fnv1a(&mut sharded_digest, &out.frame);
                arena.recycle(out.frame);
            },
        );
        assert_eq!(
            sharded_digest, digest,
            "sharded soak diverged from serial at {shards} shards \
             ({sharded_digest:016x} vs {digest:016x})"
        );
        assert_eq!(run.report.forwarded, report.forwarded);
        assert_eq!(run.report.offered, report.offered);
        assert!(
            arena.allocations() <= perf::sharded_arena_bound(shards) + 64,
            "sharded soak allocated {} arena buffers (bound {})",
            arena.allocations(),
            perf::sharded_arena_bound(shards) + 64
        );
    }

    // Timed serial pass, recycle-only sink. One rep: a soak is a
    // sustained-rate measurement, not a microbenchmark.
    let wall_s = {
        let mut module = nat_module(subscribers, table_capacity);
        module.configure_windows(WINDOW_NS, WINDOW_CAPACITY);
        let arena = PacketArena::new();
        let t0 = Instant::now();
        module.run_stream_with(
            stream(packets, subscribers, attack_sources, &arena),
            |out| arena.recycle(out.frame),
        );
        t0.elapsed().as_secs_f64()
    };

    let unexplained_drops = report.drops.fifo_overflow + report.drops.link + report.drops.unsorted;
    let cache_hit_rate = cache.hit_rate();
    let healthy =
        slo_report.healthy && cache_hit_rate >= LIFETIME_CACHE_FLOOR && unexplained_drops == 0;
    Outcome {
        packets: report.offered,
        flows: subscribers as u64,
        attack_sources: attack_sources as u64,
        forwarded: report.forwarded.0 + report.forwarded.1,
        wall_s,
        mpps_soak: report.offered as f64 / wall_s / 1e6,
        duration_ns: report.duration_ns,
        p999_latency_ns: report.latency.p999_ns(),
        cache_hit_rate,
        cache_hit_floor: LIFETIME_CACHE_FLOOR,
        unexplained_drops,
        app_drops: report.drops.app,
        control_handled: report.control_handled,
        table_load_factor: snapshot.table.load_factor(),
        table: snapshot.table,
        window_width_ns: WINDOW_NS,
        shards: shards as u64,
        digest: format!("{digest:016x}"),
        arena_allocations,
        spec,
        report: slo_report,
        healthy,
        host: host_meta(),
    }
}

/// Human-readable report: scale, throughput, verdicts, first breaches.
pub fn render(o: &Outcome) -> String {
    let rows = vec![vec![
        render::grouped(o.packets),
        render::grouped(o.flows),
        render::f(o.mpps_soak, 3),
        render::f(o.p999_latency_ns, 0),
        render::f(o.cache_hit_rate * 100.0, 2),
        o.unexplained_drops.to_string(),
        render::f(o.table_load_factor * 100.0, 1),
        o.report.windows_evaluated.to_string(),
        o.report.breaches.len().to_string(),
        if o.healthy { "yes" } else { "NO" }.to_string(),
    ]];
    let mut out = format!(
        "soak: metro city day over {} subscribers (digest {} identical serial/sharded at {} shards; \
         spec p99.9 ≤ {} ns, 0 unexplained drops, lifetime cache ≥ {:.0}%)\n\
         host: {} cores, {}\n{}",
        render::grouped(o.flows),
        o.digest,
        o.shards,
        o.spec.p999_latency_ns,
        o.cache_hit_floor * 100.0,
        o.host.cores,
        o.host.cpu_model,
        render::table(
            &[
                "packets",
                "flows",
                "Mpps (soak)",
                "p99.9 ns",
                "cache hit %",
                "unexplained",
                "table load %",
                "windows",
                "breaches",
                "healthy",
            ],
            &rows,
        )
    );
    if o.cache_hit_rate < o.cache_hit_floor {
        out.push_str(&format!(
            "\n  lifetime cache hit rate {:.2}% below floor {:.0}%",
            o.cache_hit_rate * 100.0,
            o.cache_hit_floor * 100.0
        ));
    }
    for b in o.report.breaches.iter().take(5) {
        out.push_str(&format!(
            "\n  breach @ {} ns: {} = {:.3} (bound {:.3})",
            b.window_start_ns, b.metric, b.value, b.bound
        ));
    }
    if o.report.breaches.len() > 5 {
        out.push_str(&format!("\n  … and {} more", o.report.breaches.len() - 5));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_obs::json::{FromJson, ToJson, Value};

    #[test]
    fn scaled_soak_is_healthy_and_shard_identical() {
        // A small town, same shape: all seven phases, six churn
        // boundaries, microburst interlude, two shards. run_scaled
        // itself asserts serial/sharded digest equality.
        let o = run_scaled(30_000, 2, 4_096, 512, 8_192);
        assert!(
            o.healthy,
            "soak unhealthy: hit {:.3}, breaches {:?}",
            o.cache_hit_rate, o.report.breaches
        );
        assert_eq!(o.unexplained_drops, 0);
        assert_eq!(
            o.control_handled,
            (BOUNDARIES * (CHURN_REMAPS + CHURN_DELETES)) as u64
        );
        // Offered = paced budget + 3×24 interlude bursts + churn.
        assert_eq!(o.packets, 30_000 + 72 + o.control_handled);
        assert!(o.cache_hit_rate > LIFETIME_CACHE_FLOOR);
        assert!(o.table.occupied > 0, "table telemetry populated");
        assert!(o.table_load_factor > 0.3, "load {}", o.table_load_factor);
        assert!(o.report.windows_evaluated > 0);
        assert!(o.mpps_soak > 0.0);
        assert!(o.p999_latency_ns < 100_000.0);
    }

    #[test]
    fn lifetime_cache_floor_gate_fires() {
        // 3 k packets over 32 k subscribers: almost every lookup is a
        // first touch, so the lifetime floor must fail the run even
        // though every window passes the per-window spec.
        let o = run_scaled(3_000, 1, 32_768, 512, 65_536);
        assert!(o.cache_hit_rate < LIFETIME_CACHE_FLOOR);
        assert!(!o.healthy);
        assert!(
            o.report.healthy,
            "per-window spec should pass; the lifetime floor is the gate"
        );
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let o = run_scaled(5_000, 1, 2_048, 256, 4_096);
        let text = o.to_json().to_string_pretty();
        let back = Outcome::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn render_names_the_verdict() {
        let o = run_scaled(5_000, 1, 2_048, 256, 4_096);
        let s = render(&o);
        assert!(s.contains("soak"));
        assert!(s.contains("Mpps"));
        assert!(s.contains(if o.healthy { "yes" } else { "NO" }));
    }
}
