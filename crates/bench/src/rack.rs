//! Rack-scale crossbar workload (`experiments rack`).
//!
//! Two 48-port crosspoint-queued ToRs ([`CrossbarSwitch`]) joined by an
//! uplink span, 94 subscriber hosts on the access ports, a FlexSFP in
//! nearly every cage (pass-through modules on the access ports, an ACL
//! firewall screening each uplink's ingress), and every access link
//! impaired by a seeded [`FaultPlan`] — drop, duplicate, corrupt,
//! jitter. Traffic is the [`flash_crowd`] metro profile with its
//! arrival clock compressed so the cross-rack share converges on the
//! shared uplink at ~0.9 utilization, plus deliberate runt frames so
//! the malformed path is exercised end to end.
//!
//! The run is judged on three things:
//!
//! * **exact packet conservation** — per ToR, the
//!   [`CrossbarStats::conserved`] identity must close after the final
//!   drain; across the rack, every frame the chaos layer delivered
//!   (plus every flood and module copy) must be found again as an
//!   access delivery, a module drop/diversion/absorption, a
//!   control-plane punt, a malformed or hairpin filter, or a
//!   crosspoint drop. No leaks, per copy, under loss;
//! * **an SLO gate on queue-induced latency** — the two ToRs'
//!   enqueue→grant histograms merge and the p99.9 must stay under
//!   [`P999_BOUND_NS`];
//! * **telemetry reaching the collector** — both ToRs' `flexsfp_xbar_*`
//!   families and all ~94 cage-module snapshots must render from one
//!   [`FleetCollector`] scrape.
//!
//! `BENCH_rack.json` (written by the `rack` subcommand) records the
//! verdict and every counter the identity is built from.
//!
//! [`flash_crowd`]: flexsfp_traffic::profiles::flash_crowd

use crate::perf::{host_meta, HostMeta};
use crate::render;
use flexsfp_apps::{AclAction, AclFirewall, AclRule};
use flexsfp_core::module::{FlexSfp, Interface, ModuleConfig, OutputPacket};
use flexsfp_core::ShellKind;
use flexsfp_host::{CrossbarSwitch, FaultPlan, FiberLink, FleetCollector, LossyLink};
use flexsfp_obs::LatencyHistogram;
use flexsfp_ppe::engine::PassThrough;
use flexsfp_ppe::Direction;
use flexsfp_traffic::profiles;
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::MacAddr;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Ports per ToR.
pub const TOR_PORTS: usize = 48;
/// The uplink port index on both ToRs.
pub const UPLINK: usize = TOR_PORTS - 1;
/// Access (host-facing) ports per ToR.
pub const ACCESS: usize = TOR_PORTS - 1;
/// Subscriber hosts across the rack.
pub const HOSTS: usize = 2 * ACCESS;
/// Crosspoint queue depth — shallow enough that compressed microbursts
/// overflow a crosspoint now and then, so the drop accounting is
/// exercised by the workload itself, not only by unit tests.
pub const XPOINT_DEPTH: usize = 12;
/// Flow population of the metro profile.
pub const FLOWS: usize = 4_096;
/// Packets in the full run.
pub const FULL_PACKETS: usize = 100_000;
/// Packets in the `--quick` (CI) run.
pub const QUICK_PACKETS: usize = 25_000;
/// Queue-induced (enqueue → grant) p99.9 bound, ns, over both ToRs.
pub const P999_BOUND_NS: u64 = 150_000;

/// Seed for traffic, host assignment and every per-link fault plan.
const SEED: u64 = 0x4ac4;
/// Access span length, metres.
const ACCESS_M: f64 = 30.0;
/// Uplink span length, metres (in-rack DAC-ish).
const UPLINK_M: f64 = 3.0;
/// Spacing between warm-up broadcasts, ns.
const WARMUP_SPACING_NS: u64 = 2_000;
/// Start of the main phase, ns — past the warm-up and its floods.
const MAIN_OFFSET_NS: u64 = 300_000;
/// Every `RUNT_EVERY`-th trace slot emits a 7-byte runt instead.
const RUNT_EVERY: usize = 2_500;
/// Fraction of destinations on the *other* ToR, in quarters (3/4).
const CROSS_QUARTERS: u64 = 3;
/// Arrival compression: `t * NUM / DEN`. The profile paces one 10 G
/// feed at 0.85; compressed ×0.35 and split ~half/half across the
/// ToRs with 3/4 of it cross-rack, each uplink direction lands at
/// ~0.85 / 0.35 × 0.5 × 0.75 ≈ 0.91 of line rate.
const COMPRESS_NUM: u64 = 7;
const COMPRESS_DEN: u64 = 20;
/// The /30 of the subscriber block each uplink firewall denies.
const DENY_PREFIX: (u32, u8) = (0x0a64_0000, 30);

/// Result of one rack run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Frames the hosts emitted (warm-up + main phase + runts).
    pub packets: u64,
    /// Subscriber hosts.
    pub hosts: u64,
    /// FlexSFP modules seated in cages across the rack.
    pub modules: u64,
    /// Frames offered to the access chaos layer.
    pub link_offered: u64,
    /// Frames the chaos layer delivered to ToR ports (dupes included).
    pub link_delivered: u64,
    /// Frames lost on access spans.
    pub link_dropped: u64,
    /// Extra copies created by span duplication.
    pub link_duplicated: u64,
    /// Frames delivered with a flipped bit.
    pub link_corrupted: u64,
    /// Frames handed across the uplink, ToR 0 → ToR 1.
    pub uplink_ab: u64,
    /// Frames handed across the uplink, ToR 1 → ToR 0.
    pub uplink_ba: u64,
    /// Frames delivered out access ports (the rack's useful output).
    pub delivered_access: u64,
    /// Unknown-destination floods.
    pub flooded: u64,
    /// Extra copies created by flooding.
    pub flood_copies: u64,
    /// Extra copies created by cage modules.
    pub module_copies: u64,
    /// Frames dropped by cage modules (ACL denies, module FIFOs).
    pub dropped_by_modules: u64,
    /// Frames diverted by cage modules off the natural path.
    pub diverted_by_modules: u64,
    /// Frames punted to module control planes.
    pub to_control: u64,
    /// Frames consumed by modules with no accounted fate.
    pub absorbed_by_modules: u64,
    /// Unparseable frames refused by the bridge logic.
    pub dropped_malformed: u64,
    /// Frames filtered because the destination sat on the ingress port.
    pub filtered_hairpin: u64,
    /// Frames rejected on full crosspoint queues.
    pub crosspoint_dropped: u64,
    /// Deepest crosspoint backlog observed anywhere in the rack.
    pub crosspoint_high_water: u64,
    /// Merged enqueue→grant p99.9 over both ToRs, ns.
    pub queue_p999_ns: u64,
    /// The bound `queue_p999_ns` was gated against.
    pub p999_bound_ns: u64,
    /// `flexsfp_xbar_*` samples in the collector's Prometheus scrape.
    pub xbar_samples: u64,
    /// True when every conservation identity closed exactly.
    pub conserved: bool,
    /// `conserved` + the p99.9 gate + telemetry present.
    pub healthy: bool,
    /// The machine the run executed on.
    pub host: HostMeta,
}

flexsfp_obs::impl_json_struct!(Outcome {
    packets,
    hosts,
    modules,
    link_offered,
    link_delivered,
    link_dropped,
    link_duplicated,
    link_corrupted,
    uplink_ab,
    uplink_ba,
    delivered_access,
    flooded,
    flood_copies,
    module_copies,
    dropped_by_modules,
    diverted_by_modules,
    to_control,
    absorbed_by_modules,
    dropped_malformed,
    filtered_hairpin,
    crosspoint_dropped,
    crosspoint_high_water,
    queue_p999_ns,
    p999_bound_ns,
    xbar_samples,
    conserved,
    healthy,
    host
});

/// The MAC of host `port` on ToR `tor` (locally administered, unicast).
fn host_mac(tor: usize, port: usize) -> MacAddr {
    MacAddr([0x02, 0xfc, 0xee, tor as u8, port as u8, 0x01])
}

/// A splittable 64-bit mix of a 32-bit word — flow-to-host assignment.
fn h32(x: u32, salt: u64) -> u64 {
    let mut v = u64::from(x) ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    v ^= v >> 33;
    v = v.wrapping_mul(0xff51_afd7_ed55_8ccd);
    v ^= v >> 33;
    v
}

/// One frame arriving at a ToR port (post-chaos).
struct Inj {
    t_ns: u64,
    tor: usize,
    port: usize,
    frame: Vec<u8>,
}

/// One frame crossing the uplink span, due at the peer at `t_ns`.
struct Handoff {
    t_ns: u64,
    seq: u64,
    tor: usize,
    frame: Vec<u8>,
}

impl PartialEq for Handoff {
    fn eq(&self, other: &Handoff) -> bool {
        (self.t_ns, self.seq) == (other.t_ns, other.seq)
    }
}
impl Eq for Handoff {}
impl PartialOrd for Handoff {
    fn partial_cmp(&self, other: &Handoff) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Handoff {
    fn cmp(&self, other: &Handoff) -> std::cmp::Ordering {
        (self.t_ns, self.seq).cmp(&(other.t_ns, other.seq))
    }
}

/// Build one ToR: pass-through FlexSFPs in every access cage except
/// port 0 (kept a standard SFP so runts reach the bridge's malformed
/// path), and an ACL firewall screening the uplink's wire-side ingress.
fn build_tor(tor: usize) -> CrossbarSwitch {
    let mut sw = CrossbarSwitch::new(TOR_PORTS, XPOINT_DEPTH);
    for port in 1..ACCESS {
        let cfg = ModuleConfig {
            id: format!("tor{tor}-p{port:02}"),
            ..ModuleConfig::default()
        };
        sw.insert_flexsfp(port, FlexSfp::new(cfg, Box::new(PassThrough)));
    }
    let mut fw = AclFirewall::new(16);
    fw.screen_direction = Some(Direction::OpticalToEdge);
    fw.add_rule(AclRule {
        src: Some(DENY_PREFIX),
        dst: None,
        protocol: None,
        src_port: None,
        dst_port: None,
        priority: 1,
        action: AclAction::Deny,
    });
    let cfg = ModuleConfig {
        id: format!("tor{tor}-uplink"),
        shell: ShellKind::OneWayFilter {
            ppe_direction: Direction::OpticalToEdge,
        },
        ..ModuleConfig::default()
    };
    sw.insert_flexsfp(UPLINK, FlexSfp::new(cfg, Box::new(fw)));
    sw
}

/// Push `frame`, emitted by `host` at `t_ns`, through that host's
/// impaired access span into the injection list.
fn emit(
    links: &mut [LossyLink],
    injections: &mut Vec<Inj>,
    host: usize,
    t_ns: u64,
    frame: Vec<u8>,
) {
    let carried = links[host].carry(&[OutputPacket {
        departure_ns: t_ns,
        egress: Interface::Optical,
        frame,
        latency_ns: 0.0,
    }]);
    for p in carried {
        injections.push(Inj {
            t_ns: p.arrival_ns,
            tor: host / ACCESS,
            port: host % ACCESS,
            frame: p.frame,
        });
    }
}

/// Route one batch of crossbar deliveries: access deliveries are the
/// rack's output, uplink deliveries become handoff events at the peer.
fn route(
    deliveries: Vec<flexsfp_host::TimedDelivery>,
    tor: usize,
    heap: &mut BinaryHeap<Reverse<Handoff>>,
    seq: &mut u64,
    uplink_tx: &mut [u64; 2],
    delivered_access: &mut u64,
    uplink_delay_ns: u64,
) {
    for d in deliveries {
        if d.port == UPLINK {
            uplink_tx[tor] += 1;
            *seq += 1;
            heap.push(Reverse(Handoff {
                t_ns: d.departure_ns + uplink_delay_ns,
                seq: *seq,
                tor: 1 - tor,
                frame: d.frame,
            }));
        } else {
            *delivered_access += 1;
        }
    }
}

/// Run the rack workload over `packets` main-phase trace slots.
///
/// # Panics
///
/// Panics if any conservation identity fails to close — a leak is a
/// correctness failure, not a verdict. An SLO breach or missing
/// telemetry makes the returned [`Outcome`] unhealthy (and the CLI
/// exit nonzero) without panicking.
pub fn run(packets: usize) -> Outcome {
    let uplink_delay_ns = FiberLink::new(UPLINK_M).delay_ns() as u64;
    let mut links: Vec<LossyLink> = (0..HOSTS)
        .map(|h| {
            FiberLink::new(ACCESS_M).impaired(
                FaultPlan::ideal(SEED ^ (h as u64).wrapping_mul(0x51ed))
                    .with_drop(0.01)
                    .with_duplicate(0.005)
                    .with_corrupt(0.005)
                    .with_jitter(200),
            )
        })
        .collect();
    let mut injections: Vec<Inj> = Vec::with_capacity(packets + HOSTS + 128);
    let mut emitted = 0u64;

    // Warm-up: every host broadcasts once, so both ToRs learn every MAC
    // (the peer learns it behind the uplink port as the flood crosses).
    for h in 0..HOSTS {
        let frame = PacketBuilder::eth_ipv4_udp(
            MacAddr([0xff; 6]),
            host_mac(h / ACCESS, h % ACCESS),
            0x0a00_0000 + h as u32,
            0xffff_ffff,
            68,
            67,
            b"warmup",
        );
        emitted += 1;
        emit(
            &mut links,
            &mut injections,
            h,
            h as u64 * WARMUP_SPACING_NS,
            frame,
        );
    }

    // Main phase: the flash-crowd trace, compressed, with each flow
    // pinned to a source host by its source IP and to a destination
    // host (3/4 of the time on the other ToR) by its destination IP.
    let trace = profiles::flash_crowd(SEED, FLOWS).build(packets);
    for (i, tp) in trace.into_iter().enumerate() {
        let t_ns = MAIN_OFFSET_NS + tp.arrival_ns * COMPRESS_NUM / COMPRESS_DEN;
        if i % RUNT_EVERY == RUNT_EVERY - 1 {
            // A host NIC glitch: a 7-byte runt on a standard-SFP port.
            let tor = (i / RUNT_EVERY) % 2;
            emitted += 1;
            emit(
                &mut links,
                &mut injections,
                tor * ACCESS,
                t_ns,
                vec![0x55; 7],
            );
            continue;
        }
        let mut frame = tp.frame;
        let sip = u32::from_be_bytes(frame[26..30].try_into().unwrap());
        let dip = u32::from_be_bytes(frame[30..34].try_into().unwrap());
        let src_host = (h32(sip, 1) % HOSTS as u64) as usize;
        let (src_tor, src_port) = (src_host / ACCESS, src_host % ACCESS);
        let dst_port = (h32(dip, 2) % ACCESS as u64) as usize;
        let dst_tor = if h32(dip, 3) % 4 < CROSS_QUARTERS {
            1 - src_tor
        } else {
            src_tor
        };
        frame[0..6].copy_from_slice(&host_mac(dst_tor, dst_port).0);
        frame[6..12].copy_from_slice(&host_mac(src_tor, src_port).0);
        emitted += 1;
        emit(&mut links, &mut injections, src_host, t_ns, frame);
    }
    // Chaos jitter perturbs arrival order; restore it (stable, so
    // same-instant frames keep their emission order).
    injections.sort_by_key(|e| e.t_ns);
    let mut injections: VecDeque<Inj> = injections.into();

    // The event loop: pop the earliest of (next access arrival, next
    // uplink handoff), inject, route the resulting deliveries.
    let mut tors = [build_tor(0), build_tor(1)];
    let mut heap: BinaryHeap<Reverse<Handoff>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut uplink_tx = [0u64; 2];
    let mut uplink_rx = [0u64; 2];
    let mut delivered_access = 0u64;
    loop {
        let take_handoff = match (injections.front(), heap.peek()) {
            (Some(inj), Some(Reverse(h))) => h.t_ns <= inj.t_ns,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => break,
        };
        let (tor, port, frame, t_ns) = if take_handoff {
            let Reverse(h) = heap.pop().expect("peeked");
            uplink_rx[h.tor] += 1;
            (h.tor, UPLINK, h.frame, h.t_ns)
        } else {
            let inj = injections.pop_front().expect("peeked");
            (inj.tor, inj.port, inj.frame, inj.t_ns)
        };
        let out = tors[tor].inject(port, frame, t_ns);
        route(
            out,
            tor,
            &mut heap,
            &mut seq,
            &mut uplink_tx,
            &mut delivered_access,
            uplink_delay_ns,
        );
    }

    // Final drains: empty every crosspoint, re-injecting whatever the
    // drain pushes across the uplink, until the rack is quiescent.
    loop {
        for (tor, sw) in tors.iter_mut().enumerate() {
            let out = sw.drain();
            route(
                out,
                tor,
                &mut heap,
                &mut seq,
                &mut uplink_tx,
                &mut delivered_access,
                uplink_delay_ns,
            );
        }
        while let Some(Reverse(h)) = heap.pop() {
            uplink_rx[h.tor] += 1;
            let out = tors[h.tor].inject(UPLINK, h.frame, h.t_ns);
            route(
                out,
                h.tor,
                &mut heap,
                &mut seq,
                &mut uplink_tx,
                &mut delivered_access,
                uplink_delay_ns,
            );
        }
        if heap.is_empty() && tors.iter().map(|t| t.stats().queued).sum::<u64>() == 0 {
            break;
        }
    }

    // Accounting: per-ToR identities, the uplink handoff identity, and
    // the rack-level identity over everything the chaos layer delivered.
    let chaos = links
        .iter()
        .fold(flexsfp_host::LinkChaosStats::default(), |mut acc, l| {
            let s = l.stats();
            acc.offered += s.offered;
            acc.delivered += s.delivered;
            acc.dropped += s.dropped;
            acc.duplicated += s.duplicated;
            acc.corrupted += s.corrupted;
            acc.jitter_ns_total += s.jitter_ns_total;
            acc
        });
    let (s0, s1) = (tors[0].stats(), tors[1].stats());
    assert!(s0.conserved(), "tor0 leaked: {s0:?}");
    assert!(s1.conserved(), "tor1 leaked: {s1:?}");
    assert_eq!(
        uplink_tx[0], uplink_rx[1],
        "uplink frames lost between ToR 0 and ToR 1"
    );
    assert_eq!(
        uplink_tx[1], uplink_rx[0],
        "uplink frames lost between ToR 1 and ToR 0"
    );
    assert_eq!(
        chaos.delivered,
        s0.sw.received + s1.sw.received - uplink_rx[0] - uplink_rx[1],
        "chaos deliveries and ToR receptions disagree"
    );
    let sum = |f: fn(&flexsfp_host::SwitchStats) -> u64| f(&s0.sw) + f(&s1.sw);
    let rack_sources = chaos.delivered + sum(|s| s.flood_copies) + sum(|s| s.module_copies);
    let rack_sinks = delivered_access
        + sum(|s| s.dropped_by_modules)
        + sum(|s| s.diverted_by_modules)
        + sum(|s| s.to_control)
        + sum(|s| s.absorbed_by_modules)
        + sum(|s| s.dropped_malformed)
        + sum(|s| s.filtered_hairpin)
        + s0.crosspoint_dropped
        + s1.crosspoint_dropped;
    assert_eq!(rack_sources, rack_sinks, "rack-level conservation leaked");
    let conserved = true; // the asserts above are the proof

    // Telemetry: merge the queue-latency histograms, scrape everything
    // through one collector.
    let mut queue_latency = LatencyHistogram::new();
    queue_latency.merge(tors[0].queue_latency());
    queue_latency.merge(tors[1].queue_latency());
    let queue_p999_ns = queue_latency.p999();

    let mut collector = FleetCollector::new();
    let mut modules = 0u64;
    for (i, tor) in tors.iter_mut().enumerate() {
        let snaps = tor.module_snapshots();
        modules += snaps.len() as u64;
        collector.ingest_all(snaps);
        let id = format!("tor{i}");
        collector.set_xbar_stats(&id, tor.telemetry());
    }
    let prom = collector.render_prometheus();
    let xbar_samples = prom
        .lines()
        .filter(|l| l.starts_with("flexsfp_xbar_"))
        .count() as u64;

    let (t0, t1) = (tors[0].telemetry(), tors[1].telemetry());
    let healthy = conserved && queue_p999_ns <= P999_BOUND_NS && xbar_samples > 0;
    Outcome {
        packets: emitted,
        hosts: HOSTS as u64,
        modules,
        link_offered: chaos.offered,
        link_delivered: chaos.delivered,
        link_dropped: chaos.dropped,
        link_duplicated: chaos.duplicated,
        link_corrupted: chaos.corrupted,
        uplink_ab: uplink_tx[0],
        uplink_ba: uplink_tx[1],
        delivered_access,
        flooded: sum(|s| s.flooded),
        flood_copies: sum(|s| s.flood_copies),
        module_copies: sum(|s| s.module_copies),
        dropped_by_modules: sum(|s| s.dropped_by_modules),
        diverted_by_modules: sum(|s| s.diverted_by_modules),
        to_control: sum(|s| s.to_control),
        absorbed_by_modules: sum(|s| s.absorbed_by_modules),
        dropped_malformed: sum(|s| s.dropped_malformed),
        filtered_hairpin: sum(|s| s.filtered_hairpin),
        crosspoint_dropped: s0.crosspoint_dropped + s1.crosspoint_dropped,
        crosspoint_high_water: t0.high_water.max(t1.high_water),
        queue_p999_ns,
        p999_bound_ns: P999_BOUND_NS,
        xbar_samples,
        conserved,
        healthy,
        host: host_meta(),
    }
}

/// Human-readable report: topology, chaos, conservation, the gate.
pub fn render(o: &Outcome) -> String {
    let rows = vec![vec![
        render::grouped(o.packets),
        render::grouped(o.delivered_access),
        render::grouped(o.link_dropped),
        render::grouped(o.dropped_by_modules),
        render::grouped(o.crosspoint_dropped),
        o.crosspoint_high_water.to_string(),
        render::grouped(o.queue_p999_ns),
        render::grouped(o.xbar_samples),
        if o.conserved { "exact" } else { "LEAKED" }.to_string(),
        if o.healthy { "yes" } else { "NO" }.to_string(),
    ]];
    format!(
        "rack: 2×{}-port crosspoint-queued ToRs, {} hosts, {} FlexSFP modules, \
         lossy access spans (p99.9 queue bound {} ns)\n\
         uplink: {} frames ToR0→ToR1, {} ToR1→ToR0, {} floods, {} flood copies\n\
         host: {} cores, {}\n{}",
        TOR_PORTS,
        o.hosts,
        o.modules,
        o.p999_bound_ns,
        render::grouped(o.uplink_ab),
        render::grouped(o.uplink_ba),
        render::grouped(o.flooded),
        render::grouped(o.flood_copies),
        o.host.cores,
        o.host.cpu_model,
        render::table(
            &[
                "packets",
                "delivered",
                "link drop",
                "module drop",
                "xpoint drop",
                "xpoint hw",
                "queue p99.9 ns",
                "xbar samples",
                "conservation",
                "healthy",
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_obs::json::{FromJson, ToJson, Value};

    #[test]
    fn quick_rack_is_healthy_and_conserved() {
        let o = run(6_000);
        assert!(o.conserved);
        assert!(o.healthy, "rack unhealthy: {o:?}");
        assert_eq!(o.hosts, 94);
        assert_eq!(o.modules, 2 * (ACCESS - 1) as u64 + 2);
        assert!(o.modules >= 64, "rack must seat ≥64 modules");
        assert!(o.link_dropped > 0, "the chaos plan must actually bite");
        assert!(o.link_duplicated > 0);
        assert!(o.dropped_malformed > 0, "runts must hit the bridge path");
        assert!(o.dropped_by_modules > 0, "uplink ACL must deny some flows");
        assert!(o.uplink_ab > 0 && o.uplink_ba > 0);
        assert!(o.flood_copies > 0, "warm-up must flood");
        assert!(o.xbar_samples > 0, "collector must export flexsfp_xbar_*");
        assert!(o.queue_p999_ns <= o.p999_bound_ns);
    }

    #[test]
    fn outcome_round_trips_through_json() {
        let o = run(2_000);
        let text = o.to_json().to_string_pretty();
        let back = Outcome::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn render_names_the_verdict() {
        let o = run(2_000);
        let s = render(&o);
        assert!(s.contains("rack"));
        assert!(s.contains("conservation"));
        assert!(s.contains(if o.healthy { "yes" } else { "NO" }));
    }
}
