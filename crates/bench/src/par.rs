//! Scoped-thread parallel sweep runner.
//!
//! Every §5 experiment sweep evaluates independent points (one module
//! instance per frame-size/rate/config point), so they parallelize with
//! no locking beyond a work-stealing index — and no dependencies beyond
//! `std::thread::scope`, preserving the hermetic build. Results come back
//! in input order, so sweep output (and every golden digest derived from
//! it) is identical to the serial path regardless of worker count.
//!
//! Worker counts come from [`effective_parallelism`]: the
//! `FLEXSFP_THREADS` environment variable overrides the machine's
//! [`std::thread::available_parallelism`], and nesting clamps to one —
//! a sharded run invoked from inside a sweep point (or a sweep inside a
//! shard worker) runs serially instead of spawning shards × workers
//! threads and oversubscribing the host. The clamp is a process-global
//! count of live parallel regions shared with the shard dispatcher.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Live parallel regions in this process (sweeps and shard
/// dispatchers). While nonzero, new regions run with one worker.
static ACTIVE_REGIONS: AtomicUsize = AtomicUsize::new(0);

/// RAII registration of one parallel region. Constructed by `par_map`
/// and the shard dispatcher for the span their workers are live.
pub(crate) struct RegionGuard(());

impl RegionGuard {
    /// Enter a parallel region. The returned guard keeps nested calls
    /// to [`effective_parallelism`] clamped to 1 until dropped.
    pub(crate) fn enter() -> RegionGuard {
        ACTIVE_REGIONS.fetch_add(1, Ordering::Relaxed);
        RegionGuard(())
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        ACTIVE_REGIONS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Worker-count policy, pure for testability: `override_threads` wins
/// when parseable and nonzero, nesting clamps to 1, otherwise the
/// machine parallelism stands.
fn resolve_parallelism(
    available: usize,
    override_threads: Option<&str>,
    active_regions: usize,
) -> usize {
    if active_regions > 0 {
        return 1;
    }
    match override_threads.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => available.max(1),
    }
}

/// The number of worker threads a new parallel region should use:
/// `FLEXSFP_THREADS` if set to a positive integer, else
/// [`std::thread::available_parallelism`] — clamped to 1 inside an
/// already-running parallel region, so nested parallelism (a sharded
/// run inside a sweep point, or vice versa) never oversubscribes the
/// host.
pub fn effective_parallelism() -> usize {
    resolve_parallelism(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        std::env::var("FLEXSFP_THREADS").ok().as_deref(),
        ACTIVE_REGIONS.load(Ordering::Relaxed),
    )
}

/// Map `f` over `items` on up to [`effective_parallelism`] scoped
/// worker threads, preserving input order in the result.
///
/// `f` runs once per item, on exactly one worker; items are claimed from
/// a shared atomic cursor, so uneven point costs (e.g. 64 B vs 1514 B
/// frame sweeps) balance automatically. With one effective worker (or
/// one item) this degrades to a plain serial map with no thread spawn.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = effective_parallelism().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let _region = RegionGuard::enter();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("sweep item lock")
                    .take()
                    .expect("each slot is claimed exactly once");
                let r = f(item);
                *results[i].lock().expect("sweep result lock") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panics propagate via scope")
                .expect("every slot was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..100).collect(), |i: usize| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn each_item_processed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = par_map((0..257).collect(), |i: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 257);
        assert_eq!(calls.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn non_copy_items_move_through() {
        let items: Vec<String> = (0..16).map(|i| format!("p{i}")).collect();
        let out = par_map(items, |s| s.len());
        assert_eq!(out[10], 3);
    }

    #[test]
    fn env_override_wins_when_valid() {
        assert_eq!(resolve_parallelism(8, Some("3"), 0), 3);
        assert_eq!(resolve_parallelism(8, Some(" 2 "), 0), 2);
        // Zero, garbage or absent fall back to the machine count.
        assert_eq!(resolve_parallelism(8, Some("0"), 0), 8);
        assert_eq!(resolve_parallelism(8, Some("lots"), 0), 8);
        assert_eq!(resolve_parallelism(8, None, 0), 8);
        assert_eq!(resolve_parallelism(0, None, 0), 1);
    }

    #[test]
    fn nesting_clamps_to_one() {
        // An active region clamps everything — including overrides.
        assert_eq!(resolve_parallelism(8, Some("4"), 1), 1);
        assert_eq!(resolve_parallelism(8, None, 2), 1);
    }

    #[test]
    fn nested_par_map_runs_serially() {
        // Outer parallelism is machine-dependent; the inner maps must
        // observe an active region and degrade to the serial path,
        // whatever the host. Behavior (order, completeness) is
        // unchanged either way — this exercises the clamp path.
        let guard = RegionGuard::enter();
        assert_eq!(effective_parallelism(), 1);
        let out = par_map((0..64).collect(), |i: usize| i + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        drop(guard);
    }
}
