//! Scoped-thread parallel sweep runner.
//!
//! Every §5 experiment sweep evaluates independent points (one module
//! instance per frame-size/rate/config point), so they parallelize with
//! no locking beyond a work-stealing index — and no dependencies beyond
//! `std::thread::scope`, preserving the hermetic build. Results come back
//! in input order, so sweep output (and every golden digest derived from
//! it) is identical to the serial path regardless of worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on up to [`std::thread::available_parallelism`]
/// scoped worker threads, preserving input order in the result.
///
/// `f` runs once per item, on exactly one worker; items are claimed from
/// a shared atomic cursor, so uneven point costs (e.g. 64 B vs 1514 B
/// frame sweeps) balance automatically. With one available core (or one
/// item) this degrades to a plain serial map with no thread spawn.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("sweep item lock")
                    .take()
                    .expect("each slot is claimed exactly once");
                let r = f(item);
                *results[i].lock().expect("sweep result lock") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panics propagate via scope")
                .expect("every slot was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..100).collect(), |i: usize| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn each_item_processed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = par_map((0..257).collect(), |i: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 257);
        assert_eq!(calls.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn non_copy_items_move_through() {
        let items: Vec<String> = (0..16).map(|i| format!("p{i}")).collect();
        let out = par_map(items, |s| s.len());
        assert_eq!(out[10], 3);
    }
}
