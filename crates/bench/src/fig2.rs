//! Figure 2: the prototype board, as a machine-readable inventory.
//!
//! The paper's Figure 2 is a photograph of the SFP+ module: MPF200T
//! FPGA, 128 Mb SPI flash, two bidirectional 12.7 Gb/s transceivers and
//! a JTAG bus. This experiment assembles the modelled module, inventories
//! exactly those components and runs a self-check on each.

use flexsfp_core::module::FlexSfp;
use flexsfp_fabric::jtag::JtagAdapter;
use flexsfp_fabric::resources::Device;

/// One inventory line.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Component {
    /// Component name.
    pub name: String,
    /// Key property.
    pub detail: String,
    /// Self-check passed.
    pub ok: bool,
}

flexsfp_obs::impl_json_struct!(Component { name, detail, ok });

/// The report.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Inventory lines.
    pub components: Vec<Component>,
    /// Every self-check passed.
    pub all_ok: bool,
}

flexsfp_obs::impl_json_struct!(Report { components, all_ok });

/// Build and inventory the prototype module.
pub fn run() -> Report {
    let mut module = FlexSfp::passthrough();
    let device = Device::mpf200t();
    let mut components = Vec::new();

    components.push(Component {
        name: "FPGA".into(),
        detail: format!(
            "{} — {} k LE, {:.1} Mb SRAM, {} nm",
            device.name,
            device.logic_elements / 1000,
            device.bram_kbits as f64 / 1000.0,
            device.process_nm
        ),
        ok: device.logic_elements == 192_000 && device.bram_kbits == 13_300,
    });
    components.push(Component {
        name: "SPI flash".into(),
        detail: format!(
            "{} Mb, {} design slots of {} MiB",
            flexsfp_fabric::flash::FLASH_BYTES * 8 / (1024 * 1024),
            flexsfp_fabric::flash::SLOTS,
            flexsfp_fabric::flash::SLOT_BYTES / (1024 * 1024)
        ),
        ok: module.flash.read(0, 4).is_ok(),
    });
    for (name, t) in [
        ("Electrical transceiver", &module.edge),
        ("Optical transceiver", &module.optical),
    ] {
        components.push(Component {
            name: name.into(),
            detail: format!(
                "bidirectional, {:.4} GBd line ({} Gb/s MAC)",
                t.rate.baud() as f64 / 1e9,
                t.rate.mac_bps() / 1_000_000_000
            ),
            ok: t.is_enabled(),
        });
    }
    let jtag = JtagAdapter::default();
    components.push(Component {
        name: "JTAG".into(),
        detail: format!("IDCODE 0x{:08x}", jtag.scan()),
        ok: jtag.scan() == 0x0f81_81cf,
    });
    module.refresh_dom();
    let dom = module.mgmt.read_dom();
    components.push(Component {
        name: "I2C management (SFF-8472)".into(),
        detail: format!(
            "{} {} s/n {} — DOM: {:.1} °C, {:.2} dBm tx",
            module.mgmt.vendor(),
            module.mgmt.part_number(),
            module.mgmt.serial(),
            dom.temperature_c,
            dom.tx_power_dbm()
        ),
        ok: dom.temperature_c > 0.0 && dom.tx_power_mw > 0.0,
    });
    let fit = module.fit_report();
    components.push(Component {
        name: "Loaded design".into(),
        detail: format!(
            "{} v{} — {} LUT4 used, fits: {}",
            module.app_name(),
            module.app_version(),
            fit.used.lut4,
            fit.fits()
        ),
        ok: fit.fits(),
    });
    let all_ok = components.iter().all(|c| c.ok);
    Report { components, all_ok }
}

/// Render the inventory.
pub fn render(r: &Report) -> String {
    let rows: Vec<Vec<String>> = r
        .components
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.detail.clone(),
                if c.ok { "ok".into() } else { "FAIL".into() },
            ]
        })
        .collect();
    format!(
        "Figure 2: prototype component inventory and self-check\n{}",
        crate::render::table(&["Component", "Detail", "Check"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_complete_and_healthy() {
        let r = run();
        assert!(r.all_ok, "{r:#?}");
        assert_eq!(r.components.len(), 7);
        let names: Vec<&str> = r.components.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"FPGA"));
        assert!(names.contains(&"SPI flash"));
        assert!(names.contains(&"JTAG"));
    }

    #[test]
    fn transceivers_signal_at_10gbase_r() {
        let r = run();
        let t = r
            .components
            .iter()
            .find(|c| c.name.contains("Optical"))
            .unwrap();
        assert!(t.detail.contains("10.3125 GBd"), "{}", t.detail);
    }

    #[test]
    fn flash_is_128_mbit() {
        let r = run();
        let f = r.components.iter().find(|c| c.name == "SPI flash").unwrap();
        assert!(f.detail.contains("128 Mb"), "{}", f.detail);
    }

    #[test]
    fn render_output() {
        let text = render(&run());
        assert!(text.contains("MPF200T"));
        assert!(text.contains("ok"));
        assert!(!text.contains("FAIL"));
    }
}
