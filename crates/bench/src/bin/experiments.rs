//! The experiments CLI: regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p flexsfp-bench --bin experiments -- <subcommand> [--json]
//!
//! subcommands:
//!   table1     Table 1  — NAT resource usage per component
//!   table2     Table 2  — published designs vs MPF200T
//!   table3     Table 3  — cost/power per 10G
//!   fig1       Figure 1 — architecture shells under load
//!   fig2       Figure 2 — prototype inventory & self-check
//!   linerate   §5.1     — NAT end-to-end line-rate test
//!   power      §5       — testbed power measurements
//!   scaling    §5.3     — width × clock scaling sweep
//!   ablations  extras   — design-choice ablations
//!   all        everything above in order
//! ```
//!
//! `--json` additionally emits the machine-readable report on stdout.

use flexsfp_bench::{
    ablations, fig1, fig2, latency, linerate, power, scaling, table1, table2, table3,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let known = [
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "linerate",
        "power",
        "scaling",
        "ablations",
        "latency",
        "all",
    ];
    if !known.contains(&cmd) {
        eprintln!("unknown experiment '{cmd}'; expected one of {known:?}");
        std::process::exit(2);
    }

    let run_one = |name: &str| match name {
        "table1" => {
            let r = table1::run();
            println!("{}", table1::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "table2" => {
            let r = table2::run();
            println!("{}", table2::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "table3" => {
            let r = table3::run();
            println!("{}", table3::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "fig1" => {
            let r = fig1::run(20_000);
            println!("{}", fig1::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "fig2" => {
            let r = fig2::run();
            println!("{}", fig2::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "linerate" => {
            let r = linerate::run(20_000);
            println!("{}", linerate::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "power" => {
            let r = power::run();
            println!("{}", power::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "scaling" => {
            let r = scaling::run();
            println!("{}", scaling::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "latency" => {
            let r = latency::run(20_000);
            println!("{}", latency::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "ablations" => {
            let r = ablations::run(30_000);
            println!("{}", ablations::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        _ => unreachable!(),
    };

    if cmd == "all" {
        for name in &known[..known.len() - 1] {
            run_one(name);
            println!();
        }
    } else {
        run_one(cmd);
    }
}
