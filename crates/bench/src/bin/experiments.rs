//! The experiments CLI: regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p flexsfp-bench --bin experiments -- <subcommand> [--json] [--quick]
//!
//! subcommands:
//!   table1     Table 1  — NAT resource usage per component
//!   table2     Table 2  — published designs vs MPF200T
//!   table3     Table 3  — cost/power per 10G
//!   fig1       Figure 1 — architecture shells under load
//!   fig2       Figure 2 — prototype inventory & self-check
//!   linerate   §5.1     — NAT end-to-end line-rate test
//!   power      §5       — testbed power measurements
//!   scaling    §5.3     — width × clock scaling sweep
//!   ablations  extras   — design-choice ablations
//!   latency    §6       — latency vs placement
//!   perf       baseline — simulator throughput (writes BENCH_throughput.json)
//!   slo        gate     — windowed SLO check on the §5.1 NAT workload
//!   soak       gate     — city-scale diurnal soak (writes BENCH_soak.json)
//!   rack       gate     — two-ToR crossbar rack workload (writes BENCH_rack.json)
//!   all        everything above in order
//! ```
//!
//! `--json` additionally emits the machine-readable report on stdout.
//! `--quick` shrinks the `perf` run to its CI size (200 k packets instead
//! of 2 M) and the `slo` run to 20 k packets; the JSON baseline is
//! written either way, to the current directory. Run `perf` in
//! `--release` — a debug-build measurement is not comparable to the
//! committed baseline.
//!
//! `perf --trace <file>` additionally runs a flight-recorder-armed pass
//! (1-in-64 sampling) and writes the sampled postcards as
//! chrome://tracing trace-event JSON, loadable directly in Perfetto.
//!
//! `perf --shards N` sets the shard count for the sharded-dataplane
//! measurement (`mpps_sharded`); the default is one shard per
//! available core, capped at 4. The sharded pass is digest-verified
//! against the serial run before it is timed, whatever N is.
//!
//! `slo` evaluates [`flexsfp_obs::SloSpec::generous`] over the windowed
//! telemetry and exits nonzero when any window breaches; `slo --breach`
//! swaps in an unmeetable 1 ns p99.9 bound to prove the gate fires.
//!
//! `soak` streams the 262 k-subscriber metro day (diurnal load, flash
//! crowd, DDoS, in-band NAT churn) with serial/sharded digest
//! verification, writes `BENCH_soak.json`, and exits nonzero when the
//! SLO windows breach or the lifetime cache floor is missed. `--quick`
//! shrinks the packet budget (500 k instead of 2 M) but never the flow
//! population; `--shards N` sets the verified shard count.
//!
//! `rack` runs the two-ToR crosspoint-queued crossbar rack under lossy
//! access links, asserts exact per-copy packet conservation, writes
//! `BENCH_rack.json`, and exits nonzero when the queue-latency SLO
//! gate breaches or telemetry is missing. `--quick` shrinks the packet
//! budget (25 k instead of 100 k), never the topology.

use flexsfp_bench::{
    ablations, fig1, fig2, latency, linerate, perf, power, rack, scaling, slo, soak, table1,
    table2, table3,
};
use flexsfp_obs::SloSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let breach = args.iter().any(|a| a == "--breach");

    // `--trace` and `--shards` consume the next argument as their
    // value, so the subcommand scan has to step over those values.
    let mut trace_path: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut cmd: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                match args.get(i + 1) {
                    Some(path) if !path.starts_with("--") => trace_path = Some(path.clone()),
                    _ => {
                        eprintln!("--trace requires a file path argument");
                        std::process::exit(2);
                    }
                }
                i += 2;
                continue;
            }
            "--shards" => {
                match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => shards = Some(n),
                    _ => {
                        eprintln!("--shards requires a positive integer argument");
                        std::process::exit(2);
                    }
                }
                i += 2;
                continue;
            }
            a if a.starts_with("--") => {}
            a => {
                if cmd.is_none() {
                    cmd = Some(a);
                }
            }
        }
        i += 1;
    }
    let cmd = cmd.unwrap_or("all");

    let known = [
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "linerate",
        "power",
        "scaling",
        "ablations",
        "latency",
        "perf",
        "slo",
        "soak",
        "rack",
        "all",
    ];
    if !known.contains(&cmd) {
        eprintln!("unknown experiment '{cmd}'; expected one of {known:?}");
        std::process::exit(2);
    }

    let mut exit_code = 0;
    let mut run_one = |name: &str| match name {
        "table1" => {
            let r = table1::run();
            println!("{}", table1::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "table2" => {
            let r = table2::run();
            println!("{}", table2::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "table3" => {
            let r = table3::run();
            println!("{}", table3::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "fig1" => {
            let r = fig1::run(20_000);
            println!("{}", fig1::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "fig2" => {
            let r = fig2::run();
            println!("{}", fig2::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "linerate" => {
            let r = linerate::run(20_000);
            println!("{}", linerate::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "power" => {
            let r = power::run();
            println!("{}", power::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "scaling" => {
            let r = scaling::run();
            println!("{}", scaling::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "latency" => {
            let r = latency::run(20_000);
            println!("{}", latency::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "ablations" => {
            let r = ablations::run(30_000);
            println!("{}", ablations::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "perf" => {
            let packets = if quick {
                perf::QUICK_PACKETS
            } else {
                perf::FULL_PACKETS
            };
            // Default shard count: one shard per available core, capped
            // at 4 — the scaling point the committed baseline records.
            let shards =
                shards.unwrap_or_else(|| flexsfp_bench::par::effective_parallelism().min(4));
            let r = perf::run(packets, shards);
            println!("{}", perf::render(&r));
            let text = flexsfp_obs::ToJson::to_json(&r).to_string_pretty();
            std::fs::write("BENCH_throughput.json", format!("{text}\n"))
                .expect("write BENCH_throughput.json");
            println!("wrote BENCH_throughput.json");
            if let Some(path) = &trace_path {
                let trace = perf::chrome_trace(perf::TRACE_PACKETS, perf::TRACE_EVERY);
                std::fs::write(path, format!("{}\n", trace.to_string_pretty()))
                    .unwrap_or_else(|e| panic!("write {path}: {e}"));
                println!("wrote {path} (chrome://tracing JSON — open in Perfetto)");
            }
            if json {
                println!("{text}");
            }
        }
        "slo" => {
            let packets = if quick {
                slo::QUICK_PACKETS
            } else {
                slo::FULL_PACKETS
            };
            let spec = if breach {
                slo::breach_spec()
            } else {
                SloSpec::generous()
            };
            let r = slo::run(packets, spec);
            println!("{}", slo::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
            if !r.report.healthy {
                exit_code = 1;
            }
        }
        "soak" => {
            let packets = if quick {
                soak::QUICK_PACKETS
            } else {
                soak::FULL_PACKETS
            };
            let shards =
                shards.unwrap_or_else(|| flexsfp_bench::par::effective_parallelism().min(4));
            let r = soak::run(packets, shards);
            println!("{}", soak::render(&r));
            let text = flexsfp_obs::ToJson::to_json(&r).to_string_pretty();
            std::fs::write("BENCH_soak.json", format!("{text}\n")).expect("write BENCH_soak.json");
            println!("wrote BENCH_soak.json");
            if json {
                println!("{text}");
            }
            if !r.healthy {
                exit_code = 1;
            }
        }
        "rack" => {
            let packets = if quick {
                rack::QUICK_PACKETS
            } else {
                rack::FULL_PACKETS
            };
            let r = rack::run(packets);
            println!("{}", rack::render(&r));
            let text = flexsfp_obs::ToJson::to_json(&r).to_string_pretty();
            std::fs::write("BENCH_rack.json", format!("{text}\n")).expect("write BENCH_rack.json");
            println!("wrote BENCH_rack.json");
            if json {
                println!("{text}");
            }
            if !r.healthy {
                exit_code = 1;
            }
        }
        _ => unreachable!(),
    };

    if cmd == "all" {
        for name in &known[..known.len() - 1] {
            run_one(name);
            println!();
        }
    } else {
        run_one(cmd);
    }
    std::process::exit(exit_code);
}
