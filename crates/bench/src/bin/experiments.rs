//! The experiments CLI: regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p flexsfp-bench --bin experiments -- <subcommand> [--json] [--quick]
//!
//! subcommands:
//!   table1     Table 1  — NAT resource usage per component
//!   table2     Table 2  — published designs vs MPF200T
//!   table3     Table 3  — cost/power per 10G
//!   fig1       Figure 1 — architecture shells under load
//!   fig2       Figure 2 — prototype inventory & self-check
//!   linerate   §5.1     — NAT end-to-end line-rate test
//!   power      §5       — testbed power measurements
//!   scaling    §5.3     — width × clock scaling sweep
//!   ablations  extras   — design-choice ablations
//!   latency    §6       — latency vs placement
//!   perf       baseline — simulator throughput (writes BENCH_throughput.json)
//!   all        everything above in order
//! ```
//!
//! `--json` additionally emits the machine-readable report on stdout.
//! `--quick` shrinks the `perf` run to its CI size (200 k packets instead
//! of 2 M); the JSON baseline is written either way, to the current
//! directory. Run `perf` in `--release` — a debug-build measurement is
//! not comparable to the committed baseline.

use flexsfp_bench::{
    ablations, fig1, fig2, latency, linerate, perf, power, scaling, table1, table2, table3,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let known = [
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "linerate",
        "power",
        "scaling",
        "ablations",
        "latency",
        "perf",
        "all",
    ];
    if !known.contains(&cmd) {
        eprintln!("unknown experiment '{cmd}'; expected one of {known:?}");
        std::process::exit(2);
    }

    let run_one = |name: &str| match name {
        "table1" => {
            let r = table1::run();
            println!("{}", table1::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "table2" => {
            let r = table2::run();
            println!("{}", table2::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "table3" => {
            let r = table3::run();
            println!("{}", table3::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "fig1" => {
            let r = fig1::run(20_000);
            println!("{}", fig1::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "fig2" => {
            let r = fig2::run();
            println!("{}", fig2::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "linerate" => {
            let r = linerate::run(20_000);
            println!("{}", linerate::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "power" => {
            let r = power::run();
            println!("{}", power::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "scaling" => {
            let r = scaling::run();
            println!("{}", scaling::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "latency" => {
            let r = latency::run(20_000);
            println!("{}", latency::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "ablations" => {
            let r = ablations::run(30_000);
            println!("{}", ablations::render(&r));
            if json {
                println!("{}", flexsfp_obs::ToJson::to_json(&r).to_string_pretty());
            }
        }
        "perf" => {
            let packets = if quick {
                perf::QUICK_PACKETS
            } else {
                perf::FULL_PACKETS
            };
            let r = perf::run(packets);
            println!("{}", perf::render(&r));
            let text = flexsfp_obs::ToJson::to_json(&r).to_string_pretty();
            std::fs::write("BENCH_throughput.json", format!("{text}\n"))
                .expect("write BENCH_throughput.json");
            println!("wrote BENCH_throughput.json");
            if json {
                println!("{text}");
            }
        }
        _ => unreachable!(),
    };

    if cmd == "all" {
        for name in &known[..known.len() - 1] {
            run_one(name);
            println!();
        }
    } else {
        run_one(cmd);
    }
}
