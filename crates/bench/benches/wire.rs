//! Criterion benches for the wire layer: parsing, checksums, builders.
//!
//! These quantify the per-packet software cost of the functional plane —
//! the numbers a reviewer needs to trust the throughput experiments are
//! not bottlenecked by the model itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::{checksum, Ipv4Packet, MacAddr};
use std::hint::black_box;

fn frame(len: usize) -> Vec<u8> {
    let mut f = PacketBuilder::eth_ipv4_udp(
        MacAddr([1; 6]),
        MacAddr([2; 6]),
        0xc0a80001,
        0x08080808,
        1111,
        53,
        &vec![0u8; len.saturating_sub(42)],
    );
    f.truncate(len.max(60));
    f
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/parse");
    for len in [60usize, 590, 1514] {
        let f = frame(len);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &f, |b, f| {
            let parser = flexsfp_ppe::Parser::default();
            b.iter(|| parser.parse(black_box(f)))
        });
    }
    group.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/checksum");
    for len in [20usize, 256, 1480] {
        let data = vec![0xa5u8; len];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::new("full", len), &data, |b, d| {
            b.iter(|| checksum::checksum(black_box(d)))
        });
    }
    group.bench_function("incremental_update32", |b| {
        b.iter(|| {
            checksum::update32(
                black_box(0x1234),
                black_box(0xc0a80001),
                black_box(0x0a000001),
            )
        })
    });
    group.finish();
}

fn bench_rewrite(c: &mut Criterion) {
    // The NAT inner loop: src rewrite + incremental checksums.
    let mut group = c.benchmark_group("wire/rewrite");
    let f = frame(60);
    group.throughput(Throughput::Elements(1));
    group.bench_function("src_incremental", |b| {
        b.iter_batched(
            || f.clone(),
            |mut f| {
                let mut ip = Ipv4Packet::new_unchecked(&mut f[14..]);
                ip.rewrite_src_incremental(black_box(0x65000001));
                f
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/build");
    group.bench_function("eth_ipv4_udp_64", |b| {
        b.iter(|| {
            PacketBuilder::eth_ipv4_udp(
                MacAddr([1; 6]),
                MacAddr([2; 6]),
                black_box(0xc0a80001),
                0x08080808,
                1111,
                53,
                b"payload",
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_checksum,
    bench_rewrite,
    bench_build
);
criterion_main!(benches);
