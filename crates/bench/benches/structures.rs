//! Criterion benches: core data structures of the PPE.
//!
//! Hash-table lookups (the NAT table), ternary scans (ACLs), token
//! buckets (meters), Maglev table construction (the load balancer) and
//! the hardware hash primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexsfp_fabric::hash::{crc32, toeplitz_v4_4tuple, RSS_DEFAULT_KEY};
use flexsfp_ppe::match_kinds::{TernaryEntry, TernaryTable};
use flexsfp_ppe::meter::TokenBucket;
use flexsfp_ppe::tables::HashTable;
use std::hint::black_box;

fn bench_hash_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/hash_table");
    group.throughput(Throughput::Elements(1));
    for load in [8_192usize, 16_384, 24_576] {
        let mut t: HashTable<u32, u32> = HashTable::with_capacity(32_768);
        for i in 0..load as u32 {
            let _ = t.insert(0x0a000000 | i.wrapping_mul(2654435761), i);
        }
        group.bench_with_input(BenchmarkId::new("lookup_hit", load), &load, |b, _| {
            let key = 0x0a000000u32;
            let _ = t.insert(key, 1);
            b.iter(|| t.lookup(black_box(&key)))
        });
    }
    group.finish();
}

fn bench_ternary(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/ternary");
    group.throughput(Throughput::Elements(1));
    for rows in [16usize, 64, 256] {
        let mut t: TernaryTable<u32> = TernaryTable::new(rows);
        for p in 0..rows as u32 {
            let mut value = [0u8; 13];
            value[11..13].copy_from_slice(&(p as u16).to_be_bytes());
            let mut mask = [0u8; 13];
            mask[11..13].copy_from_slice(&[0xff, 0xff]);
            t.insert(TernaryEntry {
                value,
                mask,
                priority: p,
                data: p,
            });
        }
        let miss_key = [0xffu8; 13];
        group.bench_with_input(BenchmarkId::new("scan_miss", rows), &rows, |b, _| {
            b.iter(|| t.lookup(black_box(&miss_key)))
        });
    }
    group.finish();
}

fn bench_meter(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/meter");
    group.throughput(Throughput::Elements(1));
    group.bench_function("token_bucket", |b| {
        let mut tb = TokenBucket::new(10_000_000_000, 1_000_000);
        let mut now = 0u64;
        b.iter(|| {
            now += 67;
            tb.meter(black_box(64), now)
        })
    });
    group.finish();
}

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/hashes");
    let key13 = [0x5au8; 13];
    group.throughput(Throughput::Bytes(13));
    group.bench_function("crc32_13B", |b| b.iter(|| crc32(black_box(&key13))));
    group.bench_function("toeplitz_4tuple", |b| {
        b.iter(|| {
            toeplitz_v4_4tuple(
                &RSS_DEFAULT_KEY,
                black_box(0xc0a80001),
                0x08080808,
                1111,
                80,
            )
        })
    });
    group.finish();
}

fn bench_maglev(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/maglev");
    for backends in [3usize, 16, 64] {
        let pool: Vec<u32> = (0..backends as u32).map(|i| 0x0a000001 + i).collect();
        group.bench_with_input(
            BenchmarkId::new("build_65537", backends),
            &pool,
            |b, pool| b.iter(|| flexsfp_apps::lb::maglev_table(black_box(pool), 65_537)),
        );
    }
    group.finish();
}

criterion_group!(
    all,
    bench_hash_table,
    bench_ternary,
    bench_meter,
    bench_hashes,
    bench_maglev
);
criterion_main!(all);
