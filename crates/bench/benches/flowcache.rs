//! Criterion benches: microflow action-cache primitives.
//!
//! Isolates the per-packet cost of the fast path — key extraction,
//! set-associative lookup, plan replay — and its churn modes (insert
//! under eviction pressure, epoch invalidation). These are the numbers
//! behind the cached-vs-uncached gap `experiments perf` reports.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flexsfp_apps::StaticNat;
use flexsfp_ppe::cache::{replay, ActionPlan, FlowCache, FlowKey, PlanOp};
use flexsfp_ppe::counters::CounterBank;
use flexsfp_ppe::{Direction, PacketProcessor, ProcessContext, Verdict};
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::MacAddr;
use std::hint::black_box;

const FLOWS: u32 = 64;

fn udp_frame(flow: u32) -> Vec<u8> {
    PacketBuilder::eth_ipv4_udp(
        MacAddr([0x02; 6]),
        MacAddr([0x04; 6]),
        0xc0a8_0000 + flow,
        0x0a00_0001,
        10_000 + flow as u16,
        53,
        &[0u8; 18],
    )
}

fn frames() -> Vec<Vec<u8>> {
    (0..FLOWS).map(udp_frame).collect()
}

fn nat_plan(flow: u32) -> ActionPlan {
    ActionPlan {
        ops: vec![
            PlanOp::Write {
                offset: 26,
                len: 4,
                data: (0x6540_0000u32 + flow).to_be_bytes(),
            },
            PlanOp::IncrCheck32 {
                offset: 24,
                old: 0xc0a8_0000 + flow,
                new: 0x6540_0000 + flow,
                udp: false,
            },
        ],
        verdict: Verdict::Forward,
        stage_stats: vec![(0, true), (1, true)],
        cycles: 10,
    }
}

fn seeded_cache() -> (FlowCache, Vec<FlowKey>) {
    let mut cache = FlowCache::default();
    let keys: Vec<FlowKey> = frames()
        .iter()
        .map(|f| FlowKey::extract(f, Direction::EdgeToOptical).unwrap())
        .collect();
    for (i, k) in keys.iter().enumerate() {
        cache.insert(*k, nat_plan(i as u32));
    }
    (cache, keys)
}

fn bench_extract(c: &mut Criterion) {
    let frames = frames();
    let mut group = c.benchmark_group("flowcache/extract");
    group.throughput(Throughput::Elements(1));
    group.bench_function("udp64", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let f = &frames[i % frames.len()];
            i += 1;
            black_box(FlowKey::extract(black_box(f), Direction::EdgeToOptical))
        })
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let (mut cache, keys) = seeded_cache();
    let miss_keys: Vec<FlowKey> = (FLOWS..2 * FLOWS)
        .map(|f| FlowKey::extract(&udp_frame(f), Direction::EdgeToOptical).unwrap())
        .collect();
    let mut group = c.benchmark_group("flowcache/lookup");
    group.throughput(Throughput::Elements(1));
    group.bench_function("hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let k = &keys[i % keys.len()];
            i += 1;
            black_box(cache.lookup(k).is_some())
        })
    });
    group.bench_function("miss", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let k = &miss_keys[i % miss_keys.len()];
            i += 1;
            black_box(cache.lookup(k).is_some())
        })
    });
    group.finish();
}

fn bench_insert_evict(c: &mut Criterion) {
    // A deliberately tiny cache: inserts constantly evict, exercising
    // the round-robin victim path.
    let mut group = c.benchmark_group("flowcache/insert");
    group.throughput(Throughput::Elements(1));
    group.bench_function("evicting", |b| {
        let mut cache = FlowCache::new(16);
        let keys: Vec<FlowKey> = (0..256)
            .map(|f| FlowKey::extract(&udp_frame(f), Direction::EdgeToOptical).unwrap())
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let k = keys[i % keys.len()];
            i += 1;
            cache.insert(k, nat_plan(i as u32));
        })
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let frame = udp_frame(3);
    let plan = nat_plan(3);
    let mut counters = CounterBank::new(4);
    let mut group = c.benchmark_group("flowcache/replay");
    group.throughput(Throughput::Elements(1));
    group.bench_function("nat_plan", |b| {
        let mut buf = frame.clone();
        b.iter(|| {
            buf.clear();
            buf.extend_from_slice(&frame);
            black_box(replay(&plan, &mut buf, &mut counters))
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // The full cached NAT fast path as the module drives it:
    // extract → lookup → replay, versus the slow path with the cache off.
    let frames = frames();
    let ctx = ProcessContext::egress();
    let mut group = c.benchmark_group("flowcache/nat");
    group.throughput(Throughput::Elements(1));
    for (label, cached) in [("cache_on", true), ("cache_off", false)] {
        let mut nat = StaticNat::new();
        for i in 0..FLOWS {
            nat.add_mapping(0xc0a8_0000 + i, 0x6540_0000 + i).unwrap();
        }
        nat.set_flow_cache(cached);
        group.bench_function(label, |b| {
            let mut buf = frames[0].clone();
            let mut i = 0usize;
            b.iter(|| {
                buf.clear();
                buf.extend_from_slice(&frames[i % frames.len()]);
                i += 1;
                black_box(nat.process(&ctx, &mut buf))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_extract,
    bench_lookup,
    bench_insert_evict,
    bench_replay,
    bench_end_to_end
);
criterion_main!(benches);
