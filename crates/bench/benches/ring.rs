//! Criterion benches: the fabric SPSC ring, per-item vs batched ops.
//!
//! The sharded dataplane crosses two rings per packet. Per-item
//! `try_push`/`try_pop` pay an Acquire position load and a Release
//! position store per message; the batched `push_slice`/`pop_chunk`
//! ops publish one position per chunk and only refresh the cached
//! opposite position when the ring looks full/empty, so the atomic
//! traffic amortizes across [`flexsfp_bench::shard::CHUNK`]-sized
//! batches. This bench pins the gap the sharded transport relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexsfp_bench::shard::{CHUNK, RING_ITEMS};
use flexsfp_fabric::ring::channel;
use std::hint::black_box;

/// Messages moved per measured iteration: several full ring cycles so
/// wraparound and cache refresh behavior are inside the loop.
const MESSAGES: usize = 4 * RING_ITEMS;

fn bench_ring_item(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring/per_item");
    group.throughput(Throughput::Elements(MESSAGES as u64));
    group.bench_function(BenchmarkId::new("push_pop", MESSAGES), |b| {
        b.iter(|| {
            let (mut tx, mut rx) = channel::<u64>(RING_ITEMS);
            let mut sent = 0usize;
            let mut got = 0usize;
            while got < MESSAGES {
                while sent < MESSAGES && tx.try_push(sent as u64).is_ok() {
                    sent += 1;
                }
                while let Some(v) = rx.try_pop() {
                    black_box(v);
                    got += 1;
                }
            }
        })
    });
    group.finish();
}

fn bench_ring_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring/batched");
    group.throughput(Throughput::Elements(MESSAGES as u64));
    group.bench_function(BenchmarkId::new("push_slice_pop_chunk", MESSAGES), |b| {
        b.iter(|| {
            let (mut tx, mut rx) = channel::<u64>(RING_ITEMS);
            let mut staged: Vec<u64> = Vec::with_capacity(CHUNK);
            let mut inbox: Vec<u64> = Vec::with_capacity(CHUNK);
            let mut sent = 0usize;
            let mut got = 0usize;
            while got < MESSAGES {
                while sent < MESSAGES && staged.len() < CHUNK {
                    staged.push(sent as u64);
                    sent += 1;
                }
                tx.push_slice(&mut staged);
                while rx.pop_chunk(&mut inbox, CHUNK) > 0 {
                    for v in inbox.drain(..) {
                        black_box(v);
                        got += 1;
                    }
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ring_item, bench_ring_batch);
criterion_main!(benches);
