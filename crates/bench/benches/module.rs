//! Criterion benches: whole-module simulation throughput per shell.
//!
//! Measures how fast the timed simulator pushes packets through each
//! architecture shell — both a sanity check on experiment runtimes and a
//! relative-cost comparison of the shells' plumbing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flexsfp_core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp_core::ShellKind;
use flexsfp_fabric::ClockDomain;
use flexsfp_ppe::engine::PassThrough;
use flexsfp_ppe::Direction;
use flexsfp_traffic::{SizeModel, TraceBuilder};
use std::hint::black_box;

fn trace(n: usize) -> Vec<SimPacket> {
    TraceBuilder::new(7)
        .sizes(SizeModel::Fixed(60))
        .arrivals(flexsfp_traffic::gen::ArrivalModel::Paced { utilization: 0.9 })
        .build(n)
        .into_iter()
        .map(|p| SimPacket {
            arrival_ns: p.arrival_ns,
            direction: Direction::EdgeToOptical,
            frame: p.frame,
        })
        .collect()
}

fn bench_shells(c: &mut Criterion) {
    let n = 5_000usize;
    let packets = trace(n);
    let mut group = c.benchmark_group("module/run");
    group.throughput(Throughput::Elements(n as u64));
    for (label, shell, clock) in [
        (
            "one_way_1x",
            ShellKind::one_way_egress(),
            ClockDomain::XGMII_10G,
        ),
        (
            "two_way_2x",
            ShellKind::TwoWayCore,
            ClockDomain::XGMII_10G_X2,
        ),
        (
            "active_cp_2x",
            ShellKind::ActiveControlPlane,
            ClockDomain::XGMII_10G_X2,
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &packets, |b, pkts| {
            b.iter_batched(
                || {
                    (
                        FlexSfp::new(
                            ModuleConfig {
                                shell,
                                ppe_clock: clock,
                                ..Default::default()
                            },
                            Box::new(PassThrough),
                        ),
                        pkts.clone(),
                    )
                },
                |(mut m, pkts)| black_box(m.run(pkts)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_nat_module(c: &mut Criterion) {
    let n = 5_000usize;
    let mut group = c.benchmark_group("module/nat_end_to_end");
    group.throughput(Throughput::Elements(n as u64));
    let packets = trace(n);
    group.bench_function("nat_32k", |b| {
        b.iter_batched(
            || {
                let mut nat = flexsfp_apps::StaticNat::new();
                for i in 0..64u32 {
                    nat.add_mapping(0xc0a8_0000 + i, 0x6500_0000 + i).unwrap();
                }
                (
                    FlexSfp::new(ModuleConfig::default(), Box::new(nat)),
                    packets.clone(),
                )
            },
            |(mut m, pkts)| black_box(m.run(pkts)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(all, bench_shells, bench_nat_module);
criterion_main!(all);
