//! Criterion benches: per-application packet-processing cost.
//!
//! One bench per §3 use case, all fed the same 64-byte UDP stream so the
//! relative cost of the applications is directly comparable (the
//! "Performance vs. simplicity" question of §6).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flexsfp_apps::tunnel::TunnelKind;
use flexsfp_apps::{
    AclAction, AclFirewall, AclRule, DnsFilter, L4LoadBalancer, PerSourceRateLimiter, Sanitizer,
    StaticNat, TelemetryProbe, TunnelGateway, VlanTagger,
};
use flexsfp_ppe::{PacketProcessor, ProcessContext};
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::MacAddr;
use std::hint::black_box;

fn udp_frame() -> Vec<u8> {
    PacketBuilder::eth_ipv4_udp(
        MacAddr([1; 6]),
        MacAddr([2; 6]),
        0xc0a80001,
        0x08080808,
        1111,
        80,
        b"xy",
    )
}

fn bench_app(c: &mut Criterion, name: &str, mut app: Box<dyn PacketProcessor>) {
    let mut group = c.benchmark_group("apps");
    group.throughput(Throughput::Elements(1));
    let frame = udp_frame();
    let ctx = ProcessContext::egress();
    let mut t = 0u64;
    group.bench_function(name, |b| {
        b.iter_batched(
            || frame.clone(),
            |mut f| {
                t += 100;
                black_box(app.process(&ctx.at(t), &mut f));
                f
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let mut nat = StaticNat::new();
    nat.add_mapping(0xc0a80001, 0x65000001).unwrap();
    bench_app(c, "nat_hit", Box::new(nat));

    let mut fw = AclFirewall::new(256);
    for p in 0..64u32 {
        fw.add_rule(AclRule {
            dst_port: Some(10_000 + p as u16),
            protocol: Some(17),
            ..AclRule::any(p, AclAction::Deny)
        });
    }
    bench_app(c, "firewall_64_rules_miss", Box::new(fw));

    bench_app(c, "vlan_tagger", Box::new(VlanTagger::new(100)));
    bench_app(
        c,
        "tunnel_gre_encap",
        Box::new(TunnelGateway::new(
            TunnelKind::Gre { key: 7 },
            0x0a640001,
            0x0a640002,
        )),
    );
    bench_app(
        c,
        "l4_lb_pass",
        Box::new(L4LoadBalancer::new(0x0a636363, 80, vec![1, 2, 3])),
    );
    bench_app(
        c,
        "telemetry",
        Box::new(TelemetryProbe::new(8_192, 100_000, 50_000)),
    );
    bench_app(
        c,
        "rate_limiter_unlimited",
        Box::new(PerSourceRateLimiter::new()),
    );
    bench_app(c, "dns_filter_non_dns", Box::new(DnsFilter::new()));
    bench_app(c, "sanitizer", Box::new(Sanitizer::default()));

    // The codelet VM running the same DNS-guard program as the docs.
    use flexsfp_ppe::codelet::{Cmp, Codelet, Field, Insn, Operand, VerdictCode};
    use flexsfp_ppe::tables::HashTable;
    let mut allow: HashTable<u64, u64> = HashTable::with_capacity(64);
    allow.insert(0xc0a80001, 1).unwrap();
    let program = vec![
        Insn::LdField(2, Field::DstPort),
        Insn::JmpIf(Cmp::Ne, 2, Operand::Imm(53), 5),
        Insn::LdField(3, Field::SrcIp),
        Insn::Lookup(0, 3),
        Insn::JmpIf(Cmp::Eq, 1, Operand::Imm(1), 2),
        Insn::Return(VerdictCode::Drop),
        Insn::Count(0),
        Insn::Return(VerdictCode::Forward),
    ];
    let codelet = Codelet::new("dns-guard", program, vec![allow]).unwrap();
    bench_app(c, "codelet_vm_dns_guard", Box::new(codelet));
}

criterion_group!(all, benches);
criterion_main!(all);
