//! The streaming dataplane path must be indistinguishable from the
//! materialized one: `FlexSfp::run` is a thin wrapper over
//! `run_stream_with`, and `TraceBuilder::stream` draws the same RNG
//! stream as `TraceBuilder::build`. This test pins the end-to-end
//! consequence on the §5.1 golden NAT workload: identical `SimReport`
//! aggregates AND identical output packets, byte for byte.
//!
//! The second half pins the sharded multicore path to the same
//! standard: for every §3 application, `shard::run_sharded` at 1, 2, 4
//! and 8 shards must produce the byte-identical output stream — in the
//! serial sink order — and the same report aggregates as serial
//! `run_stream_with`. This is the tentpole invariant of the sharded
//! dataplane: parallelism is a transport detail, never a behavior.

use flexsfp_apps::firewall::{AclAction, AclFirewall, AclRule};
use flexsfp_apps::sanitizer::SanitizerPolicy;
use flexsfp_apps::tunnel::TunnelKind;
use flexsfp_apps::{
    DnsFilter, Ipv6SubscriberFilter, L4LoadBalancer, PerSourceRateLimiter, Sanitizer, StaticNat,
    SynFloodGuard, TelemetryProbe, TunnelGateway, VlanTagger,
};
use flexsfp_bench::shard::run_sharded;
use flexsfp_core::control::{ControlPlane, ControlRequest, CtlTableOp, CONTROL_PORT};
use flexsfp_core::module::{FlexSfp, Interface, ModuleConfig, OutputPacket, SimPacket, SimReport};
use flexsfp_ppe::{Direction, PacketProcessor};
use flexsfp_traffic::gen::ArrivalModel;
use flexsfp_traffic::{SizeModel, TraceBuilder};
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::MacAddr;

const PRIVATE_BASE: u32 = 0xc0a8_0000;
const PUBLIC_BASE: u32 = 0x6540_0000;
const FLOWS: usize = 64;
const PACKETS: usize = 20_000;

fn nat_module() -> FlexSfp {
    let mut nat = StaticNat::new();
    for i in 0..FLOWS as u32 {
        nat.add_mapping(PRIVATE_BASE + i, PUBLIC_BASE + i)
            .expect("mapping install");
    }
    FlexSfp::new(ModuleConfig::default(), Box::new(nat))
}

fn golden_trace_builder() -> TraceBuilder {
    TraceBuilder::new(0x51)
        .flows(FLOWS)
        .src_base(PRIVATE_BASE)
        .sizes(SizeModel::Fixed(60))
        .arrivals(ArrivalModel::Paced { utilization: 1.0 })
}

fn as_sim(arrival_ns: u64, frame: Vec<u8>) -> SimPacket {
    SimPacket {
        arrival_ns,
        direction: Direction::EdgeToOptical,
        frame,
    }
}

#[test]
fn run_stream_matches_run_on_the_golden_nat_trace() {
    // Materialized path: build the whole trace, then run it.
    let trace: Vec<SimPacket> = golden_trace_builder()
        .build(PACKETS)
        .into_iter()
        .map(|p| as_sim(p.arrival_ns, p.frame))
        .collect();
    let batch = nat_module().run(trace);

    // Streaming path: generate packets on the fly, collect outputs from
    // the sink and apply run()'s departure-order sort.
    let mut streamed_outputs: Vec<OutputPacket> = Vec::new();
    let streamed = nat_module().run_stream_with(
        golden_trace_builder()
            .stream(PACKETS)
            .map(|p| as_sim(p.arrival_ns, p.frame)),
        |o| streamed_outputs.push(o),
    );
    streamed_outputs.sort_by_key(|o| o.departure_ns);

    // Aggregates agree exactly.
    assert_eq!(streamed.offered, batch.offered);
    assert_eq!(streamed.offered_bytes, batch.offered_bytes);
    assert_eq!(streamed.forwarded, batch.forwarded);
    assert_eq!(streamed.forwarded_bytes, batch.forwarded_bytes);
    assert_eq!(streamed.drops, batch.drops);
    assert_eq!(streamed.to_control, batch.to_control);
    assert_eq!(streamed.control_handled, batch.control_handled);
    assert_eq!(streamed.cp_originated, batch.cp_originated);
    assert_eq!(streamed.duration_ns, batch.duration_ns);
    assert_eq!(streamed.latency.count(), batch.latency.count());
    assert_eq!(streamed.latency.mean_ns(), batch.latency.mean_ns());
    assert_eq!(streamed.latency.p99_ns(), batch.latency.p99_ns());
    assert_eq!(streamed.latency.max_ns(), batch.latency.max_ns());

    // Outputs agree packet for packet, byte for byte.
    assert_eq!(streamed_outputs.len(), batch.outputs.len());
    for (s, b) in streamed_outputs.iter().zip(&batch.outputs) {
        assert_eq!(s.departure_ns, b.departure_ns);
        assert_eq!(s.egress, b.egress);
        assert_eq!(s.latency_ns, b.latency_ns);
        assert_eq!(s.frame, b.frame);
    }

    // And the workload did what §5.1 says: every packet forwarded.
    assert_eq!(batch.forwarded.0 + batch.forwarded.1, PACKETS as u64);
}

#[test]
fn run_stream_drop_sink_matches_run_aggregates() {
    let trace: Vec<SimPacket> = golden_trace_builder()
        .build(5_000)
        .into_iter()
        .map(|p| as_sim(p.arrival_ns, p.frame))
        .collect();
    let batch = nat_module().run(trace);

    let streamed = nat_module().run_stream(
        golden_trace_builder()
            .stream(5_000)
            .map(|p| as_sim(p.arrival_ns, p.frame)),
    );
    assert_eq!(streamed.forwarded, batch.forwarded);
    assert_eq!(streamed.forwarded_bytes, batch.forwarded_bytes);
    assert_eq!(streamed.latency.mean_ns(), batch.latency.mean_ns());
    assert!(streamed.outputs.is_empty(), "drop sink keeps no outputs");
}

// ---------------------------------------------------------------------
// Sharded path: digest-identical to serial for every §3 application.
// ---------------------------------------------------------------------

/// Packets per sharded-parity workload; crosses multiple reconciler
/// barrier intervals on both transports (`shard::BARRIER_EVERY` =
/// 4096 threaded, `shard::INLINE_BARRIER_EVERY` = 256 inline).
const SHARD_PACKETS: usize = 10_000;

/// 64-bit FNV-1a fold of `bytes` into `state`.
fn fnv1a(state: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *state ^= b as u64;
        *state = state.wrapping_mul(0x100_0000_01b3);
    }
}

/// Fold one output packet into the running stream digest. Order
/// matters: the digest pins the sink *order*, not just the set.
fn fold_output(digest: &mut u64, out: &OutputPacket) {
    fnv1a(digest, &out.departure_ns.to_le_bytes());
    fnv1a(digest, &[matches!(out.egress, Interface::Optical) as u8]);
    fnv1a(digest, &(out.frame.len() as u32).to_le_bytes());
    fnv1a(digest, &out.frame);
}

/// Build the §3 application under test by name, fresh state each call.
fn app_by_name(name: &str) -> Box<dyn PacketProcessor> {
    match name {
        "nat" => {
            let mut nat = StaticNat::new();
            for i in 0..FLOWS as u32 {
                nat.add_mapping(PRIVATE_BASE + i, PUBLIC_BASE + i)
                    .expect("mapping install");
            }
            Box::new(nat)
        }
        "firewall" => {
            let mut fw = AclFirewall::new(64);
            fw.add_rule(AclRule {
                src: Some((PRIVATE_BASE, 28)),
                dst: None,
                protocol: Some(17),
                src_port: None,
                dst_port: None,
                priority: 1,
                action: AclAction::Permit,
            });
            Box::new(fw)
        }
        "dnsfilter" => Box::new(DnsFilter::new()),
        "ipv6filter" => Box::new(Ipv6SubscriberFilter::new()),
        "lb" => Box::new(L4LoadBalancer::new(
            0x0a00_0005,
            80,
            vec![0x0a00_0101, 0x0a00_0102],
        )),
        "ratelimit" => Box::new(PerSourceRateLimiter::new()),
        "sanitizer" => Box::new(Sanitizer::new(SanitizerPolicy::default())),
        "synflood" => Box::new(SynFloodGuard::new(1024, 100, 1_000_000)),
        "telemetry" => Box::new(TelemetryProbe::new(256, 1_000_000, 50_000)),
        "tunnel" => Box::new(TunnelGateway::new(
            TunnelKind::Gre { key: 7 },
            0x0a00_0001,
            0x0a00_0002,
        )),
        "vlan" => Box::new(VlanTagger::new(100)),
        other => panic!("unknown app {other}"),
    }
}

const ALL_APPS: [&str; 11] = [
    "nat",
    "firewall",
    "dnsfilter",
    "ipv6filter",
    "lb",
    "ratelimit",
    "sanitizer",
    "synflood",
    "telemetry",
    "tunnel",
    "vlan",
];

/// The mixed UDP/TCP IMIX workload from the cache-parity suite: the
/// ports and address ranges exercise every app's interesting paths.
fn shard_workload() -> Vec<SimPacket> {
    TraceBuilder::new(0x51)
        .flows(FLOWS)
        .src_base(PRIVATE_BASE)
        .sizes(SizeModel::Imix)
        .arrivals(ArrivalModel::Paced { utilization: 0.8 })
        .tcp_share(0.5)
        .build(SHARD_PACKETS)
        .into_iter()
        .map(|p| SimPacket {
            arrival_ns: p.arrival_ns,
            direction: Direction::EdgeToOptical,
            frame: p.frame,
        })
        .collect()
}

/// Serial reference: `run_stream_with` sink-order digest + report.
fn serial_reference(app: &str, packets: Vec<SimPacket>) -> (u64, SimReport) {
    let mut module = FlexSfp::new(ModuleConfig::default(), app_by_name(app));
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let report = module.run_stream_with(packets, |out| fold_output(&mut digest, &out));
    (digest, report)
}

/// Every aggregate the merged sharded report promises to reproduce.
fn assert_reports_match(app: &str, shards: usize, sharded: &SimReport, serial: &SimReport) {
    let ctx = |field: &str| format!("app `{app}` at {shards} shards: {field} diverged");
    assert_eq!(sharded.offered, serial.offered, "{}", ctx("offered"));
    assert_eq!(
        sharded.offered_bytes,
        serial.offered_bytes,
        "{}",
        ctx("offered_bytes")
    );
    assert_eq!(sharded.forwarded, serial.forwarded, "{}", ctx("forwarded"));
    assert_eq!(
        sharded.forwarded_bytes,
        serial.forwarded_bytes,
        "{}",
        ctx("forwarded_bytes")
    );
    assert_eq!(sharded.drops, serial.drops, "{}", ctx("drops"));
    assert_eq!(
        sharded.to_control,
        serial.to_control,
        "{}",
        ctx("to_control")
    );
    assert_eq!(
        sharded.control_handled,
        serial.control_handled,
        "{}",
        ctx("control_handled")
    );
    assert_eq!(
        sharded.cp_originated,
        serial.cp_originated,
        "{}",
        ctx("cp_originated")
    );
    assert_eq!(
        sharded.duration_ns,
        serial.duration_ns,
        "{}",
        ctx("duration_ns")
    );
    assert_eq!(
        sharded.latency.count(),
        serial.latency.count(),
        "{}",
        ctx("latency.count")
    );
    // The latency sum is a fixed-point integer, so merging per-shard
    // partials is associative and the mean is bit-exact — no epsilon.
    assert_eq!(
        sharded.latency.mean_ns().to_bits(),
        serial.latency.mean_ns().to_bits(),
        "{}",
        ctx("latency.mean")
    );
    assert_eq!(
        sharded.latency.p99_ns(),
        serial.latency.p99_ns(),
        "{}",
        ctx("latency.p99")
    );
    assert_eq!(
        sharded.latency.max_ns(),
        serial.latency.max_ns(),
        "{}",
        ctx("latency.max")
    );
}

/// The tentpole invariant: for all 11 §3 apps and shards ∈ {1,2,4,8},
/// the sharded run emits the byte-identical output stream in the
/// serial sink order and merges to the same report aggregates.
///
/// `FLEXSFP_THREADS=4` forces the threaded transport (worker threads +
/// SPSC rings) even on single-core CI runners; the 1-shard point takes
/// the inline transport. Both must be indistinguishable from serial.
#[test]
fn sharded_run_is_digest_identical_to_serial_for_every_app() {
    std::env::set_var("FLEXSFP_THREADS", "4");
    for app in ALL_APPS {
        let (serial_digest, serial_report) = serial_reference(app, shard_workload());
        for shards in [1usize, 2, 4, 8] {
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            let run = run_sharded(
                shards,
                &ModuleConfig::default(),
                |_| FlexSfp::new(ModuleConfig::default(), app_by_name(app)),
                shard_workload(),
                |out| fold_output(&mut digest, &out),
            );
            assert_eq!(
                digest, serial_digest,
                "app `{app}` at {shards} shards: output stream diverged from serial \
                 ({digest:016x} vs {serial_digest:016x})"
            );
            assert_reports_match(app, shards, &run.report, &serial_report);
            assert_eq!(run.shards, shards);
            assert_eq!(
                run.routed.iter().sum::<u64>(),
                serial_report.offered,
                "every dataplane packet routed exactly once"
            );
        }
    }
}

/// Build an authenticated in-band control frame carrying a NAT table op.
fn control_frame(config: &ModuleConfig, op: CtlTableOp) -> Vec<u8> {
    let payload = ControlPlane::encode_request(&config.auth_key, &ControlRequest::Table(op));
    PacketBuilder::eth_ipv4_udp(
        config.mgmt_mac,
        MacAddr([0xee; 6]),
        0x0a00_0101,
        config.mgmt_ip,
        40_000,
        CONTROL_PORT,
        &payload,
    )
}

/// Control frames must replicate to every shard (lockstep table state)
/// while only the primary answers: a stream with mid-run NAT table
/// mutations still matches serial byte for byte, and the control
/// counters don't multiply by the shard count.
#[test]
fn sharded_run_replicates_control_mutations_to_every_shard() {
    std::env::set_var("FLEXSFP_THREADS", "4");
    let config = ModuleConfig::default();
    let mutating_stream = || {
        let mut packets = shard_workload();
        let n = packets.len();
        for i in 0..4 {
            let at = n * (i + 1) / 5;
            let arrival_ns = packets[at].arrival_ns;
            let flow = (i as u32) % FLOWS as u32;
            let op = if i == 3 {
                CtlTableOp::Delete {
                    table: 0,
                    key: (PRIVATE_BASE + flow).to_be_bytes().to_vec(),
                }
            } else {
                CtlTableOp::Insert {
                    table: 0,
                    key: (PRIVATE_BASE + flow).to_be_bytes().to_vec(),
                    value: (PUBLIC_BASE + 0x100 + flow).to_be_bytes().to_vec(),
                }
            };
            packets.insert(
                at,
                SimPacket {
                    arrival_ns,
                    direction: Direction::EdgeToOptical,
                    frame: control_frame(&config, op),
                },
            );
        }
        packets
    };

    let mut serial_digest = 0xcbf2_9ce4_8422_2325u64;
    let serial = FlexSfp::new(config.clone(), app_by_name("nat"))
        .run_stream_with(mutating_stream(), |out| {
            fold_output(&mut serial_digest, &out)
        });
    assert_eq!(serial.control_handled, 4, "all four table ops handled");

    for shards in [2usize, 4] {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let run = run_sharded(
            shards,
            &config,
            |_| FlexSfp::new(config.clone(), app_by_name("nat")),
            mutating_stream(),
            |out| fold_output(&mut digest, &out),
        );
        assert_eq!(
            digest, serial_digest,
            "control-mutating stream diverged at {shards} shards"
        );
        assert_reports_match("nat+control", shards, &run.report, &serial);
    }
}

/// The tentpole's two resource witnesses on the threaded transport:
/// a dataplane-only stream crosses dispatcher → ring → shard →
/// reconciler with **zero** frame copies (frames move end to end), and
/// ring staging allocates a constant number of message buffers —
/// `shards + 1` on the dispatcher (per-shard staging + drain scratch)
/// plus 2 per worker (inbox + outbuf) — independent of trace length.
#[test]
fn threaded_transport_is_zero_copy_with_constant_chunk_allocs() {
    std::env::set_var("FLEXSFP_THREADS", "4");
    let shards = 4usize;
    let config = ModuleConfig::default();
    let long_trace = || {
        TraceBuilder::new(0x51)
            .flows(FLOWS)
            .src_base(PRIVATE_BASE)
            .sizes(SizeModel::Imix)
            .arrivals(ArrivalModel::Paced { utilization: 0.8 })
            .tcp_share(0.5)
            .build(50_000)
            .into_iter()
            .map(|p| as_sim(p.arrival_ns, p.frame))
    };

    let run = run_sharded(
        shards,
        &config,
        |_| FlexSfp::new(config.clone(), app_by_name("nat")),
        long_trace(),
        |_| {},
    );
    assert_eq!(run.frame_copies, 0, "dataplane frames must move, not copy");
    assert_eq!(
        run.chunk_allocs,
        3 * shards as u64 + 1,
        "ring staging must reuse its buffers: O(shards) allocations over 50k packets"
    );
    assert_eq!(run.routed.iter().sum::<u64>(), 50_000);

    // Control frames are the one accounted copy: each broadcast leases
    // shards−1 duplicates from the shared arena, nothing else copies.
    let mut with_control: Vec<SimPacket> = long_trace().collect();
    for i in 0..4u32 {
        let at = with_control.len() * (i as usize + 1) / 5;
        let arrival_ns = with_control[at].arrival_ns;
        let op = CtlTableOp::Insert {
            table: 0,
            key: (PRIVATE_BASE + i).to_be_bytes().to_vec(),
            value: (PUBLIC_BASE + 0x200 + i).to_be_bytes().to_vec(),
        };
        with_control.insert(
            at,
            SimPacket {
                arrival_ns,
                direction: Direction::EdgeToOptical,
                frame: control_frame(&config, op),
            },
        );
    }
    let run = run_sharded(
        shards,
        &config,
        |_| FlexSfp::new(config.clone(), app_by_name("nat")),
        with_control,
        |_| {},
    );
    assert_eq!(run.report.control_handled, 4);
    assert_eq!(
        run.frame_copies,
        4 * (shards as u64 - 1),
        "only control broadcasts may copy"
    );
}
