//! The streaming dataplane path must be indistinguishable from the
//! materialized one: `FlexSfp::run` is a thin wrapper over
//! `run_stream_with`, and `TraceBuilder::stream` draws the same RNG
//! stream as `TraceBuilder::build`. This test pins the end-to-end
//! consequence on the §5.1 golden NAT workload: identical `SimReport`
//! aggregates AND identical output packets, byte for byte.

use flexsfp_apps::StaticNat;
use flexsfp_core::module::{FlexSfp, ModuleConfig, OutputPacket, SimPacket};
use flexsfp_ppe::Direction;
use flexsfp_traffic::gen::ArrivalModel;
use flexsfp_traffic::{SizeModel, TraceBuilder};

const PRIVATE_BASE: u32 = 0xc0a8_0000;
const PUBLIC_BASE: u32 = 0x6540_0000;
const FLOWS: usize = 64;
const PACKETS: usize = 20_000;

fn nat_module() -> FlexSfp {
    let mut nat = StaticNat::new();
    for i in 0..FLOWS as u32 {
        nat.add_mapping(PRIVATE_BASE + i, PUBLIC_BASE + i)
            .expect("mapping install");
    }
    FlexSfp::new(ModuleConfig::default(), Box::new(nat))
}

fn golden_trace_builder() -> TraceBuilder {
    TraceBuilder::new(0x51)
        .flows(FLOWS)
        .src_base(PRIVATE_BASE)
        .sizes(SizeModel::Fixed(60))
        .arrivals(ArrivalModel::Paced { utilization: 1.0 })
}

fn as_sim(arrival_ns: u64, frame: Vec<u8>) -> SimPacket {
    SimPacket {
        arrival_ns,
        direction: Direction::EdgeToOptical,
        frame,
    }
}

#[test]
fn run_stream_matches_run_on_the_golden_nat_trace() {
    // Materialized path: build the whole trace, then run it.
    let trace: Vec<SimPacket> = golden_trace_builder()
        .build(PACKETS)
        .into_iter()
        .map(|p| as_sim(p.arrival_ns, p.frame))
        .collect();
    let batch = nat_module().run(trace);

    // Streaming path: generate packets on the fly, collect outputs from
    // the sink and apply run()'s departure-order sort.
    let mut streamed_outputs: Vec<OutputPacket> = Vec::new();
    let streamed = nat_module().run_stream_with(
        golden_trace_builder()
            .stream(PACKETS)
            .map(|p| as_sim(p.arrival_ns, p.frame)),
        |o| streamed_outputs.push(o),
    );
    streamed_outputs.sort_by_key(|o| o.departure_ns);

    // Aggregates agree exactly.
    assert_eq!(streamed.offered, batch.offered);
    assert_eq!(streamed.offered_bytes, batch.offered_bytes);
    assert_eq!(streamed.forwarded, batch.forwarded);
    assert_eq!(streamed.forwarded_bytes, batch.forwarded_bytes);
    assert_eq!(streamed.drops, batch.drops);
    assert_eq!(streamed.to_control, batch.to_control);
    assert_eq!(streamed.control_handled, batch.control_handled);
    assert_eq!(streamed.cp_originated, batch.cp_originated);
    assert_eq!(streamed.duration_ns, batch.duration_ns);
    assert_eq!(streamed.latency.count(), batch.latency.count());
    assert_eq!(streamed.latency.mean_ns(), batch.latency.mean_ns());
    assert_eq!(streamed.latency.p99_ns(), batch.latency.p99_ns());
    assert_eq!(streamed.latency.max_ns(), batch.latency.max_ns());

    // Outputs agree packet for packet, byte for byte.
    assert_eq!(streamed_outputs.len(), batch.outputs.len());
    for (s, b) in streamed_outputs.iter().zip(&batch.outputs) {
        assert_eq!(s.departure_ns, b.departure_ns);
        assert_eq!(s.egress, b.egress);
        assert_eq!(s.latency_ns, b.latency_ns);
        assert_eq!(s.frame, b.frame);
    }

    // And the workload did what §5.1 says: every packet forwarded.
    assert_eq!(batch.forwarded.0 + batch.forwarded.1, PACKETS as u64);
}

#[test]
fn run_stream_drop_sink_matches_run_aggregates() {
    let trace: Vec<SimPacket> = golden_trace_builder()
        .build(5_000)
        .into_iter()
        .map(|p| as_sim(p.arrival_ns, p.frame))
        .collect();
    let batch = nat_module().run(trace);

    let streamed = nat_module().run_stream(
        golden_trace_builder()
            .stream(5_000)
            .map(|p| as_sim(p.arrival_ns, p.frame)),
    );
    assert_eq!(streamed.forwarded, batch.forwarded);
    assert_eq!(streamed.forwarded_bytes, batch.forwarded_bytes);
    assert_eq!(streamed.latency.mean_ns(), batch.latency.mean_ns());
    assert!(streamed.outputs.is_empty(), "drop sink keeps no outputs");
}
