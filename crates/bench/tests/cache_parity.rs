//! Flow-cache transparency: with the microflow action cache enabled,
//! every application must produce byte-identical output to the
//! cache-off slow path — same frames, same departure times, same
//! egress — including across mid-stream table mutations, which must
//! invalidate memoized plans rather than replay stale ones.
//!
//! Every §3 application is covered. Apps that decline the cache
//! (`set_flow_cache` returns false) still run both passes: the digest
//! equality then pins determinism and guards the day they adopt it.

use flexsfp_apps::firewall::{AclAction, AclFirewall, AclRule};
use flexsfp_apps::sanitizer::SanitizerPolicy;
use flexsfp_apps::tunnel::TunnelKind;
use flexsfp_apps::{
    DnsFilter, Ipv6SubscriberFilter, L4LoadBalancer, PerSourceRateLimiter, Sanitizer, StaticNat,
    SynFloodGuard, TelemetryProbe, TunnelGateway, VlanTagger,
};
use flexsfp_core::control::{ControlPlane, ControlRequest, CtlTableOp, CONTROL_PORT};
use flexsfp_core::module::{FlexSfp, Interface, ModuleConfig, SimPacket};
use flexsfp_ppe::{Direction, PacketProcessor};
use flexsfp_traffic::gen::ArrivalModel;
use flexsfp_traffic::{SizeModel, TraceBuilder};
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::MacAddr;

const PRIVATE_BASE: u32 = 0xc0a8_0000;
const PUBLIC_BASE: u32 = 0x6540_0000;
const FLOWS: usize = 32;
const PACKETS: usize = 6_000;

fn fnv1a(state: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *state ^= b as u64;
        *state = state.wrapping_mul(0x100_0000_01b3);
    }
}

/// Run `packets` through a module built around `app` and digest every
/// output packet (departure, egress, frame bytes). Returns the digest
/// and the forwarded count.
fn digest_run(
    mut app: Box<dyn PacketProcessor>,
    cache_on: bool,
    packets: Vec<SimPacket>,
) -> (u64, u64) {
    app.set_flow_cache(cache_on);
    let mut module = FlexSfp::new(ModuleConfig::default(), app);
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let report = module.run_stream_with(packets, |out| {
        fnv1a(&mut digest, &out.departure_ns.to_le_bytes());
        fnv1a(
            &mut digest,
            &[matches!(out.egress, Interface::Optical) as u8],
        );
        fnv1a(&mut digest, &(out.frame.len() as u32).to_le_bytes());
        fnv1a(&mut digest, &out.frame);
    });
    (digest, report.forwarded.0 + report.forwarded.1)
}

/// A mixed UDP/TCP workload with IMIX-ish sizes over the NAT source
/// range (the ports and addresses also exercise the other apps).
fn workload(seed: u64) -> Vec<SimPacket> {
    TraceBuilder::new(seed)
        .flows(FLOWS)
        .src_base(PRIVATE_BASE)
        .sizes(SizeModel::Imix)
        .arrivals(ArrivalModel::Paced { utilization: 0.8 })
        .tcp_share(0.5)
        .build(PACKETS)
        .into_iter()
        .map(|p| SimPacket {
            arrival_ns: p.arrival_ns,
            direction: Direction::EdgeToOptical,
            frame: p.frame,
        })
        .collect()
}

fn nat_app() -> Box<dyn PacketProcessor> {
    let mut nat = StaticNat::new();
    for i in 0..FLOWS as u32 {
        nat.add_mapping(PRIVATE_BASE + i, PUBLIC_BASE + i)
            .expect("mapping install");
    }
    Box::new(nat)
}

/// Every §3 application under test, by name.
fn all_apps() -> Vec<(&'static str, Box<dyn PacketProcessor>)> {
    let mut fw = AclFirewall::new(64);
    fw.add_rule(AclRule {
        src: Some((PRIVATE_BASE, 28)),
        dst: None,
        protocol: Some(17),
        src_port: None,
        dst_port: None,
        priority: 1,
        action: AclAction::Permit,
    });
    vec![
        ("nat", nat_app()),
        ("firewall", Box::new(fw)),
        ("dnsfilter", Box::new(DnsFilter::new())),
        ("ipv6filter", Box::new(Ipv6SubscriberFilter::new())),
        (
            "lb",
            Box::new(L4LoadBalancer::new(
                0x0a00_0005,
                80,
                vec![0x0a00_0101, 0x0a00_0102],
            )),
        ),
        ("ratelimit", Box::new(PerSourceRateLimiter::new())),
        (
            "sanitizer",
            Box::new(Sanitizer::new(SanitizerPolicy::default())),
        ),
        (
            "synflood",
            Box::new(SynFloodGuard::new(1024, 100, 1_000_000)),
        ),
        (
            "telemetry",
            Box::new(TelemetryProbe::new(256, 1_000_000, 50_000)),
        ),
        (
            "tunnel",
            Box::new(TunnelGateway::new(
                TunnelKind::Gre { key: 7 },
                0x0a00_0001,
                0x0a00_0002,
            )),
        ),
        ("vlan", Box::new(VlanTagger::new(100))),
    ]
}

#[test]
fn every_app_is_cache_transparent() {
    let mut checked = 0;
    for seed in [0x51u64, 0xbeef] {
        for (name, _) in all_apps() {
            // Rebuild the app per pass: state (rate limiter buckets,
            // flow tables) must start identical.
            let app_off = all_apps().into_iter().find(|(n, _)| *n == name).unwrap().1;
            let app_on = all_apps().into_iter().find(|(n, _)| *n == name).unwrap().1;
            let (d_off, fwd_off) = digest_run(app_off, false, workload(seed));
            let (d_on, fwd_on) = digest_run(app_on, true, workload(seed));
            assert_eq!(
                d_on, d_off,
                "app `{name}` output diverged with flow cache on (seed {seed:#x})"
            );
            assert_eq!(fwd_on, fwd_off, "app `{name}` forwarded count diverged");
            checked += 1;
        }
    }
    assert_eq!(checked, 22, "11 apps x 2 seeds");
}

/// Build an authenticated in-band control frame carrying a NAT table op.
fn control_frame(module: &FlexSfp, op: CtlTableOp) -> Vec<u8> {
    let payload = ControlPlane::encode_request(&module.config.auth_key, &ControlRequest::Table(op));
    PacketBuilder::eth_ipv4_udp(
        module.config.mgmt_mac,
        MacAddr([0xee; 6]),
        0x0a00_0101,
        module.config.mgmt_ip,
        40_000,
        CONTROL_PORT,
        &payload,
    )
}

/// Interleave table-mutating control frames into the data stream:
/// every mapping is remapped to a new public address mid-run, then one
/// mapping is deleted. Cached plans recorded before each mutation are
/// stale afterwards; the cache-on run must still match cache-off byte
/// for byte.
fn mutating_stream(module: &FlexSfp) -> Vec<SimPacket> {
    let mut packets = workload(0x51);
    let n = packets.len();
    for i in 0..4 {
        let at = n * (i + 1) / 5;
        let arrival_ns = packets[at].arrival_ns;
        let flow = (i as u32) % FLOWS as u32;
        let op = if i == 3 {
            CtlTableOp::Delete {
                table: 0,
                key: (PRIVATE_BASE + flow).to_be_bytes().to_vec(),
            }
        } else {
            CtlTableOp::Insert {
                table: 0,
                key: (PRIVATE_BASE + flow).to_be_bytes().to_vec(),
                value: (PUBLIC_BASE + 0x100 + flow).to_be_bytes().to_vec(),
            }
        };
        packets.insert(
            at,
            SimPacket {
                arrival_ns,
                direction: Direction::EdgeToOptical,
                frame: control_frame(module, op),
            },
        );
    }
    packets
}

#[test]
fn mid_stream_table_mutations_invalidate_cached_plans() {
    let run = |cache_on: bool| {
        let mut app = nat_app();
        app.set_flow_cache(cache_on);
        let mut module = FlexSfp::new(ModuleConfig::default(), app);
        let stream = mutating_stream(&module);
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut saw_new_public = false;
        let report = module.run_stream_with(stream, |out| {
            fnv1a(&mut digest, &out.departure_ns.to_le_bytes());
            fnv1a(
                &mut digest,
                &[matches!(out.egress, Interface::Optical) as u8],
            );
            fnv1a(&mut digest, &out.frame);
            // Post-mutation frames must carry the remapped public
            // address — a stale replayed plan would keep the old one.
            if out.frame.len() >= 30 {
                let src = u32::from_be_bytes(out.frame[26..30].try_into().unwrap());
                if (PUBLIC_BASE + 0x100..PUBLIC_BASE + 0x100 + FLOWS as u32).contains(&src) {
                    saw_new_public = true;
                }
            }
        });
        assert_eq!(report.control_handled, 4, "all mutations handled");
        assert!(saw_new_public, "remapped address visible in output");
        digest
    };
    assert_eq!(
        run(true),
        run(false),
        "mid-stream mutations: cache-on output diverged from slow path"
    );
}

#[test]
fn clearing_the_table_mid_stream_stays_transparent() {
    // Reprogram-style staleness: wipe the whole table mid-stream. All
    // cached plans are stale at once; cache-on must degrade exactly
    // like cache-off (packets fall through as table misses).
    let run = |cache_on: bool| {
        let mut app = nat_app();
        app.set_flow_cache(cache_on);
        let mut module = FlexSfp::new(ModuleConfig::default(), app);
        let mut packets = workload(0x7a);
        let mid = packets.len() / 2;
        let arrival_ns = packets[mid].arrival_ns;
        packets.insert(
            mid,
            SimPacket {
                arrival_ns,
                direction: Direction::EdgeToOptical,
                frame: control_frame(&module, CtlTableOp::Clear { table: 0 }),
            },
        );
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let report = module.run_stream_with(packets, |out| {
            fnv1a(&mut digest, &out.departure_ns.to_le_bytes());
            fnv1a(&mut digest, &out.frame);
        });
        assert_eq!(report.control_handled, 1);
        digest
    };
    assert_eq!(run(true), run(false), "table clear: cache-on diverged");
}
