//! Chaos integration suite (§5.3 failure recovery): seeded fault
//! injection on the control channel must never leave a module wedged.
//!
//! Every scenario here is fully deterministic — the impairment is
//! driven by a seeded RNG, so a failing seed reproduces bit-for-bit.
//! The invariant proved across all seeds: after a deploy attempt over
//! an impaired channel, every module either
//!
//! 1. holds the *byte-exact* staged image in the target slot and runs
//!    the new app version, or
//! 2. was cleanly rolled back to the golden image in slot 0,
//!
//! and no module is ever left mid-update in `Receiving`.

use flexsfp_core::auth::AuthKey;
use flexsfp_core::module::{FlexSfp, ModuleConfig};
use flexsfp_core::reprogram::UpdateState;
use flexsfp_core::Bitstream;
use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_host::chaos::{FaultPlan, ImpairedPort};
use flexsfp_host::mgmt::RetryPolicy;
use flexsfp_host::{FleetCollector, FleetManager, ManagementClient};

const UPDATE_SLOT: usize = 2;
const NEW_VERSION: u32 = 7;
const GOLDEN_VERSION: u32 = 1;

/// The golden image every module ships with in slot 0.
fn golden_image() -> Vec<u8> {
    Bitstream::new(
        "passthrough",
        GOLDEN_VERSION,
        ResourceManifest::ZERO,
        156_250_000,
    )
    .to_bytes()
}

/// The rollout image: a multi-chunk bitstream (~8 KB payload), so a
/// deploy spans many exchanges and gives the channel room to misbehave.
fn update_image() -> Vec<u8> {
    let manifest = ResourceManifest {
        lut4: 655,
        ff: 400,
        usram: 4,
        lsram: 2,
    };
    Bitstream::new("passthrough", NEW_VERSION, manifest, 156_250_000).to_bytes()
}

fn module(i: usize) -> FlexSfp {
    let cfg = ModuleConfig {
        id: format!("CHAOS-{i:04}"),
        ..ModuleConfig::default()
    };
    let mut m = FlexSfp::new(cfg, Box::new(flexsfp_ppe::engine::PassThrough));
    m.flash.write_slot(0, &golden_image()).unwrap();
    m
}

fn chaos_fleet(
    n: usize,
    plan_for: impl Fn(usize) -> FaultPlan,
) -> FleetManager<ImpairedPort<FlexSfp>> {
    let ports = (0..n)
        .map(|i| ImpairedPort::new(module(i), plan_for(i)))
        .collect();
    let client = ManagementClient::with_policy(
        AuthKey::DEFAULT,
        RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        },
    );
    FleetManager::with_client(ports, client)
}

/// Check the §5.3 invariant for one module after a chaos deploy.
/// Returns true when the module converged to the new image.
fn assert_converged_or_golden(m: &mut FlexSfp, image: &[u8]) -> bool {
    // Never wedged mid-update, regardless of outcome.
    assert!(
        !matches!(m.control.update_state(), UpdateState::Receiving { .. }),
        "{} left wedged in Receiving",
        m.config.id
    );
    if m.app_version() == NEW_VERSION {
        // Byte-exact staged image in the target slot.
        let staged = m.flash.read_slot(UPDATE_SLOT, image.len()).unwrap();
        assert_eq!(staged, image, "{} staged image corrupt", m.config.id);
        true
    } else {
        // Clean rollback: running the golden build, not some torn state.
        assert_eq!(
            m.app_version(),
            GOLDEN_VERSION,
            "{} ended on neither new nor golden image",
            m.config.id
        );
        false
    }
}

#[test]
fn every_seed_converges_or_rolls_back_cleanly() {
    let image = update_image();
    let mut converged_total = 0usize;
    for seed in 1..=8u64 {
        let fleet = chaos_fleet(6, |i| FaultPlan::lossy(seed * 100 + i as u64));
        let report = fleet.deploy_all(UPDATE_SLOT, &image, 3);
        // Every module accounted for exactly once.
        assert_eq!(
            report.updated.len()
                + report.rolled_back.len()
                + report.failed.len()
                + report.quarantined.len(),
            6,
            "seed {seed}: {report:?}"
        );
        assert!(report.quarantined.is_empty(), "fresh fleet, no quarantine");
        for i in 0..6 {
            let converged =
                fleet.with_module(i, |p| assert_converged_or_golden(p.inner_mut(), &image));
            if converged {
                converged_total += 1;
            }
        }
    }
    // The retry/resume machinery must actually win most of the time
    // under the moderate `lossy` plan — otherwise it is not resilience,
    // just failure reporting.
    println!("chaos convergence: {converged_total}/48 deploys landed the new image");
    assert!(
        converged_total >= 8 * 6 / 2,
        "only {converged_total}/48 deploys converged"
    );
}

#[test]
fn chaos_outcome_is_deterministic_per_seed() {
    let image = update_image();
    let run = || {
        let fleet = chaos_fleet(4, |i| FaultPlan::lossy(4242 + i as u64));
        let report = fleet.deploy_all(UPDATE_SLOT, &image, 1);
        let stats: Vec<_> = (0..4)
            .map(|i| fleet.with_module(i, |p| p.stats()))
            .collect();
        let versions: Vec<_> = (0..4)
            .map(|i| fleet.with_module(i, |p| p.inner_mut().app_version()))
            .collect();
        (report, stats, versions)
    };
    let (r1, s1, v1) = run();
    let (r2, s2, v2) = run();
    assert_eq!(r1, r2);
    assert_eq!(s1, s2);
    assert_eq!(v1, v2);
}

#[test]
fn duplicate_heavy_channel_exercises_idempotent_acks() {
    // No loss, only duplication: every deploy must succeed, and the
    // module-side FSM must have absorbed replayed chunks as acks.
    let image = update_image();
    let fleet = chaos_fleet(3, |i| FaultPlan::ideal(77 + i as u64).with_duplicate(0.9));
    let report = fleet.deploy_all(UPDATE_SLOT, &image, 1);
    assert_eq!(report.updated.len(), 3, "{report:?}");
    let mut dup_acks = 0;
    for i in 0..3 {
        fleet.with_module(i, |p| {
            assert!(p.stats().duplicates > 0, "plan produced no duplicates");
            let m = p.inner_mut();
            assert_eq!(m.app_version(), NEW_VERSION);
            dup_acks += m.control.ctrl_counters().dup_chunk_acks;
        });
    }
    assert!(
        dup_acks > 0,
        "duplicated chunks should surface as idempotent acks"
    );
}

#[test]
fn flapping_channel_never_wedges_and_counters_export() {
    // A flappy, lossy fleet swept for telemetry after a rollout: the
    // retry/abort/flap counters must surface in the Prometheus text.
    let image = update_image();
    let fleet = chaos_fleet(4, |i| FaultPlan::lossy(9000 + i as u64).with_flap(0.05, 4));
    let report = fleet.deploy_all(UPDATE_SLOT, &image, 2);
    assert_eq!(
        report.updated.len() + report.rolled_back.len() + report.failed.len(),
        4
    );
    for i in 0..4 {
        fleet.with_module(i, |p| {
            assert_converged_or_golden(p.inner_mut(), &image);
        });
    }

    let mut collector = FleetCollector::new();
    collector.ingest_sweep(fleet.telemetry_snapshots());
    collector.set_transport_stats(fleet.client().transport_stats());
    for i in 0..4 {
        let (id, stats) = fleet.with_module(i, |p| (p.inner_mut().config.id.clone(), p.stats()));
        collector.set_channel_stats(&id, stats);
    }
    let text = collector.render_prometheus();
    for family in [
        "flexsfp_ctrl_dup_chunk_acks_total",
        "flexsfp_ctrl_update_aborts_total",
        "flexsfp_ctrl_update_errors_total",
        "flexsfp_ctrl_status_queries_total",
        "flexsfp_ctrl_retries_total",
        "flexsfp_ctrl_timeouts_total",
        "flexsfp_ctrl_aborts_sent_total",
        "flexsfp_ctrl_resyncs_total",
        "flexsfp_ctrl_link_faults_total",
        "flexsfp_scrape_failures_total",
    ] {
        assert!(text.contains(family), "missing {family} in export");
    }
    // The lossy channels definitely retried something.
    assert!(fleet.client().transport_stats().retries > 0);
}

#[test]
fn brutal_channel_degrades_to_golden_instead_of_wedging() {
    // A near-unusable cable and an impatient client: most deploys
    // fail. The point of this arm is the *failure* path — every failed
    // module must land on the golden image with an idle FSM.
    let image = update_image();
    let ports = (0..6)
        .map(|i| {
            ImpairedPort::new(
                module(i),
                FaultPlan::lossy(31_000 + i as u64)
                    .with_drop(0.45)
                    .with_flap(0.05, 6),
            )
        })
        .collect();
    let client = ManagementClient::with_policy(
        AuthKey::DEFAULT,
        RetryPolicy {
            max_attempts: 2,
            max_resyncs: 4,
            ..RetryPolicy::default()
        },
    );
    let fleet = FleetManager::with_client(ports, client);
    let report = fleet.deploy_all(UPDATE_SLOT, &image, 2);
    assert!(
        !report.rolled_back.is_empty() || !report.failed.is_empty(),
        "brutal plan unexpectedly let every deploy through: {report:?}"
    );
    for i in 0..6 {
        fleet.with_module(i, |p| {
            assert_converged_or_golden(p.inner_mut(), &image);
        });
    }
    // The teardown path ran: aborts were sent on the wire.
    assert!(fleet.client().transport_stats().aborts_sent > 0);
}

#[test]
fn ideal_channel_control_arm_is_lossless() {
    // The control arm: the same machinery over perfect channels must
    // deploy everything first try with zero retries or aborts.
    let image = update_image();
    let fleet = chaos_fleet(3, |i| FaultPlan::ideal(i as u64));
    let report = fleet.deploy_all(UPDATE_SLOT, &image, 3);
    assert_eq!(report.updated.len(), 3);
    let t = fleet.client().transport_stats();
    assert_eq!(t.retries, 0);
    assert_eq!(t.timeouts, 0);
    assert_eq!(t.resyncs, 0);
    for i in 0..3 {
        fleet.with_module(i, |p| {
            assert_eq!(p.inner_mut().app_version(), NEW_VERSION);
            assert_eq!(p.inner_mut().boots(), 2);
        });
    }
}
