//! In-tree seeded PRNG: SplitMix64 seeding into xoshiro256**.
//!
//! The trace generators used to run on `rand::StdRng`, which has two
//! problems for an experiment harness: it is an external dependency (so
//! a registry-free build cannot compile), and its stream is only stable
//! within one rand major version — a `rand` upgrade silently changes
//! every "seeded, reproducible" trace and with it every regenerated
//! figure. This module pins the bitstream to two published, trivially
//! re-implementable algorithms (Vigna's SplitMix64 and xoshiro256**),
//! so a seed maps to the same packet trace on every platform, forever.
//! The golden test in `tests/golden_trace.rs` freezes that mapping.

/// SplitMix64: a tiny 64-bit generator used to expand one `u64` seed
/// into the xoshiro state (the seeding procedure its authors recommend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's general-purpose seeded PRNG.
///
/// 256-bit state, period 2^256 − 1, equidistributed 64-bit outputs;
/// passes BigCrush. Not cryptographic — the control plane's SipHash
/// authentication lives in `flexsfp-core`, not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion of one `u64` (the reference
    /// seeding procedure; never yields the forbidden all-zero state).
    pub fn seed_from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[lo, hi)` (unbiased, rejection-sampled).
    ///
    /// Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        if span.is_power_of_two() {
            return lo + (self.next_u64() & (span - 1));
        }
        // 2^64 ≡ threshold (mod span): rejecting x < threshold leaves a
        // multiple of `span` equally likely values — no modulo bias.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return lo + x % span;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `usize` in `[lo, hi]`.
    pub fn range_inclusive_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == 0 && hi == usize::MAX {
            return self.next_u64() as usize;
        }
        self.range_usize(lo, hi + 1)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// An exponentially distributed sample with the given mean
    /// (inverse-CDF on a never-zero uniform, for Poisson gaps/jitter).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(1e-12);
        -u.ln() * mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = Xoshiro256::seed_from_u64(43);
        assert_ne!(va, (0..16).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of U[0,1) over 10k samples: well inside ±0.02.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_are_in_bounds_and_cover() {
        let mut r = Xoshiro256::seed_from_u64(1);
        let mut seen = [false; 12];
        for _ in 0..1_000 {
            let v = r.range_u64(0, 12);
            assert!(v < 12);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v = r.range_inclusive_usize(60, 1514);
            assert!((60..=1514).contains(&v));
        }
        // Power-of-two fast path.
        for _ in 0..100 {
            assert!(r.range_u64(8, 16) >= 8);
            assert!(r.range_u64(8, 16) < 16);
        }
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(99);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.range_usize(0, 10)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mean = 300.0;
        let n = 50_000;
        let total: f64 = (0..n).map(|_| r.exp(mean)).sum();
        assert!((total / n as f64 - mean).abs() < mean * 0.05);
        assert!(r.exp(0.0) == 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256::seed_from_u64(3);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
