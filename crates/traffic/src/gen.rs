//! Seeded flow-based traffic generation.
//!
//! A [`TraceBuilder`] produces a time-stamped packet trace from a flow
//! population, a packet-size model and an arrival process. Everything is
//! driven by one explicit seed: the same builder always emits the same
//! trace, byte for byte.

use crate::rate::LineRateCalc;
use crate::rng::Xoshiro256;
use flexsfp_wire::builder::PacketBuilder;
use flexsfp_wire::tcp::TcpFlags;
use flexsfp_wire::{MacAddr, PacketArena};
use std::collections::VecDeque;

/// Constant payload filler (the generator's payload byte is 0x5a). Sized
/// for the largest standard frame so the per-packet path never allocates
/// a scratch payload buffer.
const PAYLOAD_FILL: [u8; 1514] = [0x5a; 1514];

/// One generated packet.
#[derive(Debug, Clone)]
pub struct TracePacket {
    /// Arrival time, ns.
    pub arrival_ns: u64,
    /// The Ethernet frame (no FCS).
    pub frame: Vec<u8>,
}

/// Packet-size models (frame length without FCS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeModel {
    /// All frames the same size.
    Fixed(usize),
    /// Uniform in `[min, max]`.
    Uniform(usize, usize),
    /// The classic 7:4:1 IMIX (60 / 590 / 1514 B without FCS).
    Imix,
}

impl SizeModel {
    fn sample(&self, rng: &mut Xoshiro256) -> usize {
        match *self {
            SizeModel::Fixed(n) => n,
            SizeModel::Uniform(lo, hi) => rng.range_inclusive_usize(lo, hi),
            SizeModel::Imix => match rng.range_u64(0, 12) {
                0..=6 => 60,
                7..=10 => 590,
                _ => 1514,
            },
        }
    }

    /// Mean frame size of the model.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeModel::Fixed(n) => n as f64,
            SizeModel::Uniform(lo, hi) => (lo + hi) as f64 / 2.0,
            SizeModel::Imix => (7.0 * 60.0 + 4.0 * 590.0 + 1514.0) / 12.0,
        }
    }
}

/// Arrival processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Deterministically paced at a fraction of line rate.
    Paced {
        /// Offered load as a fraction of line rate (0, 1].
        utilization: f64,
    },
    /// Poisson arrivals with the same mean rate.
    Poisson {
        /// Offered load as a fraction of line rate (0, 1].
        utilization: f64,
    },
}

/// One flow's immutable 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// True for TCP, false for UDP.
    pub tcp: bool,
}

/// Builder for packet traces.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    seed: u64,
    rate: LineRateCalc,
    flows: usize,
    size: SizeModel,
    arrival: ArrivalModel,
    src_base: u32,
    dst_base: u32,
    dport: u16,
    tcp_share: f64,
    microbursts: Vec<(u64, usize)>,
}

impl TraceBuilder {
    /// A builder with sensible defaults: 10 G line, 64 flows, IMIX
    /// sizes, 50 % paced load, sources in 192.168/16, UDP to port 80.
    pub fn new(seed: u64) -> TraceBuilder {
        TraceBuilder {
            seed,
            rate: LineRateCalc::TEN_GIG,
            flows: 64,
            size: SizeModel::Imix,
            arrival: ArrivalModel::Paced { utilization: 0.5 },
            src_base: 0xc0a8_0000,
            dst_base: 0x0808_0000,
            dport: 80,
            tcp_share: 0.0,
            microbursts: Vec::new(),
        }
    }

    /// Set the line-rate calculator.
    pub fn rate(mut self, rate: LineRateCalc) -> TraceBuilder {
        self.rate = rate;
        self
    }

    /// Set the number of distinct flows.
    pub fn flows(mut self, n: usize) -> TraceBuilder {
        assert!(n > 0);
        self.flows = n;
        self
    }

    /// Set the packet-size model.
    pub fn sizes(mut self, s: SizeModel) -> TraceBuilder {
        self.size = s;
        self
    }

    /// Set the arrival process.
    pub fn arrivals(mut self, a: ArrivalModel) -> TraceBuilder {
        self.arrival = a;
        self
    }

    /// Set the base of the source address range (one address per flow,
    /// ascending).
    pub fn src_base(mut self, base: u32) -> TraceBuilder {
        self.src_base = base;
        self
    }

    /// Set the base of the destination address range.
    pub fn dst_base(mut self, base: u32) -> TraceBuilder {
        self.dst_base = base;
        self
    }

    /// Set the destination port.
    pub fn dport(mut self, p: u16) -> TraceBuilder {
        self.dport = p;
        self
    }

    /// Fraction of flows that are TCP (rest UDP).
    pub fn tcp_share(mut self, share: f64) -> TraceBuilder {
        self.tcp_share = share.clamp(0.0, 1.0);
        self
    }

    /// Inject a microburst at `at_ns`: `packets` back-to-back maximum-
    /// size frames on top of the paced traffic.
    pub fn microburst(mut self, at_ns: u64, packets: usize) -> TraceBuilder {
        self.microbursts.push((at_ns, packets));
        self
    }

    /// The flow population this builder will use.
    pub fn flow_specs(&self) -> Vec<FlowSpec> {
        let mut rng = Xoshiro256::seed_from_u64(self.seed ^ 0xf10f_f10f);
        (0..self.flows)
            .map(|i| FlowSpec {
                src: self.src_base.wrapping_add(i as u32),
                dst: self.dst_base.wrapping_add((i % 16) as u32),
                sport: 1024 + (i % 60_000) as u16,
                dport: self.dport,
                tcp: rng.next_f64() < self.tcp_share,
            })
            .collect()
    }

    /// Build one flow frame in place into `buf` (leased from an arena or
    /// any reusable vector); at most one allocation, and none once `buf`
    /// has full-frame capacity.
    fn build_frame_into(flow: &FlowSpec, len: usize, seq: u32, buf: &mut Vec<u8>) {
        let dst_mac = MacAddr::from(0x02_00_00_00_00_01u64);
        let src_mac = MacAddr::from(0x02_00_00_00_00_02u64);
        let headers = if flow.tcp { 14 + 20 + 20 } else { 14 + 20 + 8 };
        let payload_len = len.saturating_sub(headers);
        // Oversized (jumbo) requests fall back to a scratch payload; every
        // standard size borrows the constant filler.
        let scratch;
        let payload: &[u8] = if payload_len <= PAYLOAD_FILL.len() {
            &PAYLOAD_FILL[..payload_len]
        } else {
            scratch = vec![0x5au8; payload_len];
            &scratch
        };
        if flow.tcp {
            PacketBuilder::eth_ipv4_tcp_into(
                buf,
                dst_mac,
                src_mac,
                flow.src,
                flow.dst,
                flow.sport,
                flow.dport,
                seq,
                TcpFlags {
                    ack: true,
                    ..Default::default()
                },
                payload,
            );
        } else {
            PacketBuilder::eth_ipv4_udp_into(
                buf, dst_mac, src_mac, flow.src, flow.dst, flow.sport, flow.dport, payload,
            );
        }
    }

    fn build_frame(flow: &FlowSpec, len: usize, seq: u32) -> Vec<u8> {
        let mut frame = Vec::new();
        Self::build_frame_into(flow, len, seq, &mut frame);
        frame
    }

    /// Generate `count` packets (plus any injected microbursts), sorted
    /// by arrival time.
    ///
    /// Equivalent to `self.stream(count).collect()` — the materialized and
    /// streaming paths share one generator, so they can never diverge.
    pub fn build(&self, count: usize) -> Vec<TracePacket> {
        let mut out: Vec<TracePacket> = Vec::with_capacity(count);
        out.extend(self.stream(count));
        out
    }

    /// Stream the same trace [`build`](Self::build) materializes — same
    /// RNG stream, same frames, same arrival order — holding only O(1)
    /// state (plus any injected microbursts, which are pre-materialized).
    /// Memory no longer scales with trace length, so 10M+-packet runs
    /// are feasible.
    pub fn stream(&self, count: usize) -> TraceStream {
        self.stream_pooled(count, PacketArena::new())
    }

    /// Like [`stream`](Self::stream), but lease frame buffers from the
    /// caller's [`PacketArena`]. A consumer that recycles frames back into
    /// the same arena (e.g. after [`FlexSfp::run_stream_with`] emits them)
    /// keeps the whole run allocation-free in steady state.
    ///
    /// [`FlexSfp::run_stream_with`]: https://docs.rs/flexsfp-core
    pub fn stream_pooled(&self, count: usize, arena: PacketArena) -> TraceStream {
        let flows = self.flow_specs();
        // Microbursts: back-to-back 1514 B frames at line rate. They are
        // few and bounded by configuration, so they are materialized up
        // front and stably merged with the paced stream. Stable sort here
        // + "main wins ties" in the merge reproduces build()'s historical
        // stable sort of [paced..., bursts...] exactly.
        let mut bursts: Vec<TracePacket> = Vec::new();
        for &(at_ns, packets) in &self.microbursts {
            let gap_ns = self.rate.gap_ns(1514, 1.0);
            for k in 0..packets {
                let flow = &flows[k % flows.len()];
                bursts.push(TracePacket {
                    arrival_ns: at_ns + (k as f64 * gap_ns) as u64,
                    frame: Self::build_frame(flow, 1514, k as u32),
                });
            }
        }
        bursts.sort_by_key(|p| p.arrival_ns);
        let templates = vec![Vec::new(); flows.len()];
        TraceStream {
            rng: Xoshiro256::seed_from_u64(self.seed),
            flows,
            size: self.size,
            arrival: self.arrival,
            rate: self.rate,
            arena,
            t_fs: 0,
            next_seq: 0,
            count,
            bursts: bursts.into(),
            templates,
            template_bytes: 0,
            template_budget: TEMPLATE_BYTE_BUDGET,
            last_gap: (usize::MAX, 0.0),
        }
    }
}

/// Frame templates kept per flow. Fixed and IMIX size models are fully
/// covered (≤3 distinct lengths); wide Uniform models fall back to
/// building frames past the cap.
const TEMPLATES_PER_FLOW: usize = 4;

/// Global cap on cached template frame bytes per stream. At city scale
/// (256k+ flows × up to 4 IMIX templates of up to ~1.5 kB each) an
/// unbounded per-flow cache would cost hundreds of megabytes; past this
/// budget frames are simply built instead of memoized, which changes
/// nothing about the output bytes (pinned by golden-digest tests) —
/// only the amortized build cost for the coldest flows.
const TEMPLATE_BYTE_BUDGET: usize = 8 << 20;

/// Streaming counterpart of [`TraceBuilder::build`]; see
/// [`TraceBuilder::stream`]. Yields packets sorted by arrival time.
#[derive(Debug)]
pub struct TraceStream {
    rng: Xoshiro256,
    flows: Vec<FlowSpec>,
    size: SizeModel,
    arrival: ArrivalModel,
    rate: LineRateCalc,
    arena: PacketArena,
    t_fs: u128, // femtoseconds for exact pacing
    next_seq: usize,
    count: usize,
    bursts: VecDeque<TracePacket>,
    /// Per-flow `(len, frame)` template cache for UDP flows. The UDP
    /// frame builder does not consume the sequence number, so a UDP
    /// frame is a pure function of (flow, length): after the first
    /// build, subsequent packets of the flow/length are a straight
    /// memcpy. TCP flows embed the per-packet sequence number and are
    /// always built in full. Byte-for-byte output equality with the
    /// uncached path is pinned by golden-digest tests.
    templates: Vec<Vec<(u32, Vec<u8>)>>,
    /// Frame bytes currently held by `templates`, bounded by
    /// `template_budget`.
    template_bytes: usize,
    /// The stream's cap on cached template bytes
    /// ([`TEMPLATE_BYTE_BUDGET`]; tests shrink it to cover the
    /// budget-exhausted path cheaply).
    template_budget: usize,
    /// One-entry memo of `rate.gap_ns(len, utilization)` keyed on frame
    /// length — the gap is a pure function of length for a fixed stream.
    last_gap: (usize, f64),
}

impl TraceStream {
    /// The arena frames are leased from (clone of the handle passed to
    /// [`TraceBuilder::stream_pooled`]).
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    /// Shrink the template byte budget so tests can exercise the
    /// budget-exhausted path without generating megabytes of flows.
    #[cfg(test)]
    fn set_template_budget(&mut self, bytes: usize) {
        self.template_budget = bytes;
    }
}

impl Iterator for TraceStream {
    type Item = TracePacket;

    fn next(&mut self) -> Option<TracePacket> {
        // Merge the paced stream with pre-materialized bursts; on an
        // arrival-time tie the paced packet goes first (it preceded the
        // burst in the historical stable sort).
        // u128 division is a libcall; paced clocks fit u64 femtoseconds
        // (~5 h) in practice, so divide in u64 (a multiply-shift) and
        // keep the wide division as the fallback.
        let main_arrival = if self.next_seq < self.count {
            Some(if self.t_fs <= u128::from(u64::MAX) {
                (self.t_fs as u64) / 1_000_000
            } else {
                (self.t_fs / 1_000_000) as u64
            })
        } else {
            None
        };
        match (main_arrival, self.bursts.front()) {
            (None, None) => return None,
            (None, Some(_)) => return self.bursts.pop_front(),
            (Some(m), Some(b)) if b.arrival_ns < m => return self.bursts.pop_front(),
            _ => {}
        }
        let arrival_ns = main_arrival.expect("paced packet pending");
        let flow_idx = self.rng.range_usize(0, self.flows.len());
        let flow = &self.flows[flow_idx];
        let len = self.size.sample(&mut self.rng);
        let mut frame = self.arena.lease();
        let slot = &mut self.templates[flow_idx];
        if flow.tcp {
            TraceBuilder::build_frame_into(flow, len, self.next_seq as u32, &mut frame);
        } else if let Some((_, t)) = slot.iter().find(|(l, _)| *l == len as u32) {
            frame.clear();
            frame.extend_from_slice(t);
        } else {
            TraceBuilder::build_frame_into(flow, len, self.next_seq as u32, &mut frame);
            if slot.len() < TEMPLATES_PER_FLOW
                && self.template_bytes + frame.len() <= self.template_budget
            {
                self.template_bytes += frame.len();
                slot.push((len as u32, frame.clone()));
            }
        }
        let mean_gap = if self.last_gap.0 == frame.len() {
            self.last_gap.1
        } else {
            let utilization = match self.arrival {
                ArrivalModel::Paced { utilization } | ArrivalModel::Poisson { utilization } => {
                    utilization
                }
            };
            let g = self.rate.gap_ns(frame.len(), utilization);
            self.last_gap = (frame.len(), g);
            g
        };
        let mean_gap_ns = match self.arrival {
            ArrivalModel::Paced { .. } => mean_gap,
            ArrivalModel::Poisson { .. } => self.rng.exp(mean_gap),
        };
        // f64→u128 is a libcall too; go through u64 when the gap fits
        // (it always does for sub-5-hour gaps).
        let gap_fs = mean_gap_ns * 1e6;
        self.t_fs += if gap_fs < u64::MAX as f64 {
            u128::from(gap_fs as u64)
        } else {
            gap_fs as u128
        };
        self.next_seq += 1;
        Some(TracePacket { arrival_ns, frame })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.count - self.next_seq + self.bursts.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::ipv4::Ipv4Packet;
    use flexsfp_wire::EthernetFrame;

    #[test]
    fn deterministic_for_same_seed() {
        let a = TraceBuilder::new(42).build(200);
        let b = TraceBuilder::new(42).build(200);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_ns, y.arrival_ns);
            assert_eq!(x.frame, y.frame);
        }
        let c = TraceBuilder::new(43).build(200);
        assert!(a.iter().zip(&c).any(|(x, y)| x.frame != y.frame));
    }

    #[test]
    fn template_budget_does_not_change_output() {
        // Starve the template cache: every frame takes the build path
        // instead of the memcpy path, and the bytes must not change.
        let builder = TraceBuilder::new(42).flows(16).tcp_share(0.25);
        let cached: Vec<_> = builder.stream(600).collect();
        let mut starved_stream = builder.stream(600);
        starved_stream.set_template_budget(0);
        let starved: Vec<_> = starved_stream.by_ref().collect();
        assert_eq!(starved_stream.template_bytes, 0);
        assert_eq!(cached.len(), starved.len());
        for (x, y) in cached.iter().zip(&starved) {
            assert_eq!(x.arrival_ns, y.arrival_ns);
            assert_eq!(x.frame, y.frame);
        }
    }

    #[test]
    fn frames_are_valid_and_sorted() {
        let trace = TraceBuilder::new(7).tcp_share(0.5).build(500);
        let mut last = 0;
        for p in &trace {
            assert!(p.arrival_ns >= last);
            last = p.arrival_ns;
            let eth = EthernetFrame::new_checked(&p.frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            assert!(ip.verify_checksum());
        }
    }

    #[test]
    fn paced_arrivals_hit_target_rate() {
        // 2000 fixed-size frames at 50% of 10G.
        let trace = TraceBuilder::new(1)
            .sizes(SizeModel::Fixed(1000))
            .arrivals(ArrivalModel::Paced { utilization: 0.5 })
            .build(2_000);
        let span_ns = trace.last().unwrap().arrival_ns - trace[0].arrival_ns;
        let bits: f64 = trace.iter().map(|p| (p.frame.len() * 8) as f64).sum();
        let rate = bits / (span_ns as f64 / 1e9);
        // Offered frame-bit rate should be ~0.5 × 10G × 1000/1024ths
        // of wire share; just assert the 10% band around goodput.
        let expected = LineRateCalc::TEN_GIG.goodput_bps(1000, 0.5);
        assert!(
            (rate - expected).abs() / expected < 0.05,
            "rate {rate:.3e} vs {expected:.3e}"
        );
    }

    #[test]
    fn poisson_mean_matches_paced() {
        let paced = TraceBuilder::new(5)
            .sizes(SizeModel::Fixed(500))
            .arrivals(ArrivalModel::Paced { utilization: 0.3 })
            .build(5_000);
        let poisson = TraceBuilder::new(5)
            .sizes(SizeModel::Fixed(500))
            .arrivals(ArrivalModel::Poisson { utilization: 0.3 })
            .build(5_000);
        let span = |t: &[TracePacket]| (t.last().unwrap().arrival_ns - t[0].arrival_ns) as f64;
        let ratio = span(&poisson) / span(&paced);
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn imix_distribution() {
        let trace = TraceBuilder::new(3).sizes(SizeModel::Imix).build(12_000);
        let small = trace.iter().filter(|p| p.frame.len() == 60).count() as f64;
        let mid = trace.iter().filter(|p| p.frame.len() == 590).count() as f64;
        let big = trace.iter().filter(|p| p.frame.len() == 1514).count() as f64;
        let total = trace.len() as f64;
        assert!((small / total - 7.0 / 12.0).abs() < 0.03);
        assert!((mid / total - 4.0 / 12.0).abs() < 0.03);
        assert!((big / total - 1.0 / 12.0).abs() < 0.03);
        assert!((SizeModel::Imix.mean() - 357.83).abs() < 0.01);
    }

    #[test]
    fn flow_population_respected() {
        let b = TraceBuilder::new(9).flows(8);
        let specs = b.flow_specs();
        assert_eq!(specs.len(), 8);
        let trace = b.build(1_000);
        let mut srcs = std::collections::HashSet::new();
        for p in &trace {
            let eth = EthernetFrame::new_checked(&p.frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            srcs.insert(ip.src());
        }
        assert_eq!(srcs.len(), 8);
        assert!(srcs.contains(&0xc0a8_0000));
    }

    #[test]
    fn microburst_injected_back_to_back() {
        let trace = TraceBuilder::new(2)
            .sizes(SizeModel::Fixed(60))
            .arrivals(ArrivalModel::Paced { utilization: 0.01 })
            .microburst(1_000_000, 50)
            .build(100);
        let burst: Vec<_> = trace
            .iter()
            .filter(|p| (1_000_000..1_200_000).contains(&p.arrival_ns) && p.frame.len() == 1514)
            .collect();
        assert_eq!(burst.len(), 50);
        // Back-to-back at line rate: ~1.23 µs per 1514+24 B frame.
        let gap = burst[1].arrival_ns - burst[0].arrival_ns;
        assert!((1_200..1_260).contains(&gap), "gap {gap}");
    }

    #[test]
    fn tcp_share_produces_tcp_flows() {
        let specs = TraceBuilder::new(11).flows(100).tcp_share(1.0).flow_specs();
        assert!(specs.iter().all(|f| f.tcp));
        let none = TraceBuilder::new(11).flows(100).tcp_share(0.0).flow_specs();
        assert!(none.iter().all(|f| !f.tcp));
    }
}
