//! Scenario presets matching the paper's deployment stories.
//!
//! §2.1 motivates FlexSFP with telecom aggregation: FTTH subscribers,
//! mobile fronthaul and enterprise edges. Each preset returns a
//! configured [`TraceBuilder`] whose flow population and size mix
//! resemble that environment, so experiments can say "an FTTH port"
//! instead of hand-tuning distributions.

use crate::gen::{ArrivalModel, SizeModel, TraceBuilder};

/// A residential FTTH subscriber port: few flows, IMIX sizes, moderate
/// load, a DNS-ish flow population toward port 53 mixed in by dport 80
/// default (DNS-heavy variant below).
pub fn ftth_subscriber(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(32)
        .sizes(SizeModel::Imix)
        .arrivals(ArrivalModel::Poisson { utilization: 0.2 })
        .src_base(0x0a64_0100) // CGNAT-style 10.100.1.0 block
        .dport(443)
}

/// An enterprise edge uplink: many flows, IMIX, high sustained load.
pub fn enterprise_edge(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(512)
        .sizes(SizeModel::Imix)
        .arrivals(ArrivalModel::Paced { utilization: 0.7 })
        .tcp_share(0.8)
        .dport(443)
}

/// A fronthaul-like link (RU↔DU): few flows of large, rigidly paced
/// frames — latency is everything here.
pub fn fronthaul(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(4)
        .sizes(SizeModel::Fixed(1400))
        .arrivals(ArrivalModel::Paced { utilization: 0.9 })
        .src_base(0x0a0a_0000)
        .dport(2152) // GTP-U-ish
}

/// A DNS-heavy access mix for the filtering use case: small UDP frames
/// toward port 53.
pub fn dns_heavy(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(128)
        .sizes(SizeModel::Uniform(70, 120))
        .arrivals(ArrivalModel::Poisson { utilization: 0.1 })
        .dport(53)
}

/// Worst-case stress: minimum-size frames at full line rate — the
/// canonical 14.88 Mpps test of §5.1.
pub fn min_frame_line_rate(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(256)
        .sizes(SizeModel::Fixed(60))
        .arrivals(ArrivalModel::Paced { utilization: 1.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::ipv4::Ipv4Packet;
    use flexsfp_wire::udp::UdpDatagram;
    use flexsfp_wire::EthernetFrame;

    #[test]
    fn dns_heavy_targets_port_53() {
        let trace = dns_heavy(1).build(100);
        for p in &trace {
            let eth = EthernetFrame::new_checked(&p.frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
            assert_eq!(udp.dst_port(), 53);
        }
    }

    #[test]
    fn min_frame_trace_is_line_rate_64b() {
        let trace = min_frame_line_rate(1).build(1_000);
        assert!(trace.iter().all(|p| p.frame.len() == 60));
        let span = trace.last().unwrap().arrival_ns - trace[0].arrival_ns;
        // 999 gaps × 67.2 ns ≈ 67.1 µs.
        assert!((66_000..68_500).contains(&span), "span {span}");
    }

    #[test]
    fn fronthaul_is_rigidly_paced() {
        let trace = fronthaul(1).build(100);
        let gaps: Vec<u64> = trace
            .windows(2)
            .map(|w| w[1].arrival_ns - w[0].arrival_ns)
            .collect();
        let first = gaps[0];
        assert!(gaps.iter().all(|g| g.abs_diff(first) <= 1), "{gaps:?}");
    }

    #[test]
    fn presets_are_deterministic() {
        for f in [ftth_subscriber, enterprise_edge, fronthaul, dns_heavy] {
            let a = f(5).build(50);
            let b = f(5).build(50);
            assert_eq!(a.len(), b.len());
            assert!(a.iter().zip(&b).all(|(x, y)| x.frame == y.frame));
        }
    }
}
