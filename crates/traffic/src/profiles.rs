//! Scenario presets matching the paper's deployment stories.
//!
//! §2.1 motivates FlexSFP with telecom aggregation: FTTH subscribers,
//! mobile fronthaul and enterprise edges. Each preset returns a
//! configured [`TraceBuilder`] whose flow population and size mix
//! resemble that environment, so experiments can say "an FTTH port"
//! instead of hand-tuning distributions.

use crate::gen::{ArrivalModel, SizeModel, TraceBuilder};

/// A residential FTTH subscriber port: few flows, IMIX sizes, moderate
/// load, a DNS-ish flow population toward port 53 mixed in by dport 80
/// default (DNS-heavy variant below).
pub fn ftth_subscriber(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(32)
        .sizes(SizeModel::Imix)
        .arrivals(ArrivalModel::Poisson { utilization: 0.2 })
        .src_base(0x0a64_0100) // CGNAT-style 10.100.1.0 block
        .dport(443)
}

/// An enterprise edge uplink: many flows, IMIX, high sustained load.
pub fn enterprise_edge(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(512)
        .sizes(SizeModel::Imix)
        .arrivals(ArrivalModel::Paced { utilization: 0.7 })
        .tcp_share(0.8)
        .dport(443)
}

/// A fronthaul-like link (RU↔DU): few flows of large, rigidly paced
/// frames — latency is everything here.
pub fn fronthaul(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(4)
        .sizes(SizeModel::Fixed(1400))
        .arrivals(ArrivalModel::Paced { utilization: 0.9 })
        .src_base(0x0a0a_0000)
        .dport(2152) // GTP-U-ish
}

/// A DNS-heavy access mix for the filtering use case: small UDP frames
/// toward port 53.
pub fn dns_heavy(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(128)
        .sizes(SizeModel::Uniform(70, 120))
        .arrivals(ArrivalModel::Poisson { utilization: 0.1 })
        .dport(53)
}

/// Worst-case stress: minimum-size frames at full line rate — the
/// canonical 14.88 Mpps test of §5.1.
pub fn min_frame_line_rate(seed: u64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(256)
        .sizes(SizeModel::Fixed(60))
        .arrivals(ArrivalModel::Paced { utilization: 1.0 })
}

/// A metro-ISP aggregation port: a city-scale CGNAT subscriber
/// population (§2.1's FTTH story at aggregation rather than access
/// scale). `subscribers` sets the flow population, `utilization` the
/// offered load, so a soak can sweep a diurnal curve (overnight trough
/// → daytime plateau → evening peak) by chaining phases that differ
/// only in load.
///
/// Arrivals are paced: at utilization ≤ 1 a paced stream never
/// backlogs the PPE server, so every departure depends only on the
/// packet's own arrival and length — the property that keeps the
/// sharded dataplane digest-identical to serial under this workload.
/// Callers modeling burstier access traffic can swap in
/// `ArrivalModel::Poisson` via [`TraceBuilder::arrivals`].
pub fn metro_subscribers(seed: u64, subscribers: usize, utilization: f64) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(subscribers)
        .sizes(SizeModel::Imix)
        .arrivals(ArrivalModel::Paced { utilization })
        .src_base(0x0a64_0000) // CGNAT 10.100.0.0/16-and-up block
        .dport(443)
}

/// A flash crowd on the same metro port: the whole subscriber base
/// piles onto one event stream (paced, high sustained load) with
/// back-to-back microbursts layered on top. Burst depth stays well
/// under the 64 KB ingress FIFO so a healthy dataplane absorbs them
/// without drops — the SLO gate checks exactly that.
pub fn flash_crowd(seed: u64, subscribers: usize) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(subscribers)
        .sizes(SizeModel::Imix)
        .arrivals(ArrivalModel::Paced { utilization: 0.85 })
        .src_base(0x0a64_0000)
        .dport(443)
        .microburst(50_000, 24)
        .microburst(250_000, 24)
        .microburst(450_000, 24)
}

/// A volumetric DDoS aimed through the port: minimum-size frames from
/// a source block disjoint from the subscriber ranges, at near line
/// rate. Against the NAT these sources have no mappings, so the attack
/// exercises table lookup misses and policy drops at the worst-case
/// packet rate.
pub fn ddos_burst(seed: u64, sources: usize) -> TraceBuilder {
    TraceBuilder::new(seed)
        .flows(sources)
        .sizes(SizeModel::Fixed(60))
        .arrivals(ArrivalModel::Paced { utilization: 0.9 })
        .src_base(0xc632_0000) // TEST-NET-ish 198.50.0.0 attack block
        .dport(53)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsfp_wire::ipv4::Ipv4Packet;
    use flexsfp_wire::udp::UdpDatagram;
    use flexsfp_wire::EthernetFrame;

    #[test]
    fn dns_heavy_targets_port_53() {
        let trace = dns_heavy(1).build(100);
        for p in &trace {
            let eth = EthernetFrame::new_checked(&p.frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
            assert_eq!(udp.dst_port(), 53);
        }
    }

    #[test]
    fn min_frame_trace_is_line_rate_64b() {
        let trace = min_frame_line_rate(1).build(1_000);
        assert!(trace.iter().all(|p| p.frame.len() == 60));
        let span = trace.last().unwrap().arrival_ns - trace[0].arrival_ns;
        // 999 gaps × 67.2 ns ≈ 67.1 µs.
        assert!((66_000..68_500).contains(&span), "span {span}");
    }

    #[test]
    fn fronthaul_is_rigidly_paced() {
        let trace = fronthaul(1).build(100);
        let gaps: Vec<u64> = trace
            .windows(2)
            .map(|w| w[1].arrival_ns - w[0].arrival_ns)
            .collect();
        let first = gaps[0];
        assert!(gaps.iter().all(|g| g.abs_diff(first) <= 1), "{gaps:?}");
    }

    #[test]
    fn presets_are_deterministic() {
        for f in [ftth_subscriber, enterprise_edge, fronthaul, dns_heavy] {
            let a = f(5).build(50);
            let b = f(5).build(50);
            assert_eq!(a.len(), b.len());
            assert!(a.iter().zip(&b).all(|(x, y)| x.frame == y.frame));
        }
        let a = metro_subscribers(5, 4096, 0.4).build(200);
        let b = metro_subscribers(5, 4096, 0.4).build(200);
        assert!(a.iter().zip(&b).all(|(x, y)| x.frame == y.frame));
    }

    #[test]
    fn metro_population_scales_with_subscribers() {
        use std::collections::BTreeSet;
        let trace = metro_subscribers(9, 1024, 0.5).build(5_000);
        let srcs: BTreeSet<u32> = trace
            .iter()
            .map(|p| {
                let eth = EthernetFrame::new_checked(&p.frame[..]).unwrap();
                let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
                ip.src()
            })
            .collect();
        // 5k samples over 1k subscribers should touch most of them, and
        // all sources must come from the CGNAT block.
        assert!(srcs.len() > 900, "only {} distinct sources", srcs.len());
        assert!(srcs.iter().all(|s| s & 0xff00_0000 == 0x0a00_0000));
    }

    #[test]
    fn flash_crowd_carries_microbursts() {
        let trace = flash_crowd(3, 256).build(2_000);
        // 2 000 paced packets plus 3 bursts of 24 max-size frames.
        assert_eq!(trace.len(), 2_000 + 3 * 24);
        // The first burst's frames land at line rate from t = 50 µs.
        let burst = trace
            .iter()
            .filter(|p| p.frame.len() == 1514 && (50_000..85_000).contains(&p.arrival_ns))
            .count();
        assert!(burst >= 24, "{burst} burst frames near 50 µs");
    }

    #[test]
    fn ddos_burst_is_min_frame_from_attack_block() {
        let trace = ddos_burst(11, 512).build(1_000);
        for p in &trace {
            assert_eq!(p.frame.len(), 60);
            let eth = EthernetFrame::new_checked(&p.frame[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            let src = ip.src();
            assert_eq!(src & 0xffff_0000, 0xc632_0000);
        }
    }
}
