//! Line-rate arithmetic for trace pacing.
//!
//! Ethernet line-rate math in one place: a 10 Gb/s wire carries
//! `rate / ((len + 20) × 8)` frames per second of `len`-byte frames,
//! where 20 B is preamble + SFD + inter-frame gap. The §5.1 end-to-end
//! test and every throughput experiment pace their offered load with
//! these formulas.

/// Per-frame wire overhead: 7 B preamble + 1 B SFD + 12 B IFG.
pub const WIRE_OVERHEAD_BYTES: usize = 20;

/// Line-rate calculator for a given nominal bit rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineRateCalc {
    /// Nominal MAC bit rate, bits/s.
    pub rate_bps: u64,
}

impl LineRateCalc {
    /// 10 Gigabit Ethernet.
    pub const TEN_GIG: LineRateCalc = LineRateCalc {
        rate_bps: 10_000_000_000,
    };

    /// A calculator for `rate_bps`.
    pub fn new(rate_bps: u64) -> LineRateCalc {
        LineRateCalc { rate_bps }
    }

    /// Maximum frames/s at frame length `len` (excluding FCS in `len`;
    /// the 4-byte FCS is part of the 64-byte minimum, so pass on-wire
    /// lengths consistently across the workspace: frame without FCS).
    pub fn max_fps(&self, len: usize) -> f64 {
        self.rate_bps as f64 / (((len + 4 + WIRE_OVERHEAD_BYTES) * 8) as f64)
    }

    /// Inter-arrival gap in nanoseconds at `utilization` (0..=1] of line
    /// rate for `len`-byte frames.
    pub fn gap_ns(&self, len: usize, utilization: f64) -> f64 {
        assert!(utilization > 0.0, "zero utilization has no gap");
        1e9 / (self.max_fps(len) * utilization.min(1.0))
    }

    /// Utilization consumed by `fps` frames/s of `len`-byte frames.
    pub fn utilization(&self, len: usize, fps: f64) -> f64 {
        fps / self.max_fps(len)
    }

    /// Effective goodput in bits/s when sending `len`-byte frames at
    /// `utilization` of line rate (frame bits only, no preamble/IFG).
    pub fn goodput_bps(&self, len: usize, utilization: f64) -> f64 {
        self.max_fps(len) * utilization.min(1.0) * (len * 8) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_ten_gig_numbers() {
        // 60-byte frames (without FCS) = 64 on the wire: 14.88 Mpps.
        let fps = LineRateCalc::TEN_GIG.max_fps(60);
        assert!((fps - 14_880_952.38).abs() < 1.0, "{fps}");
        // 1514-byte frames = 1518 on the wire: 812 743 fps.
        let fps_big = LineRateCalc::TEN_GIG.max_fps(1514);
        assert!((fps_big - 812_743.8).abs() < 1.0, "{fps_big}");
    }

    #[test]
    fn gap_is_inverse_of_fps() {
        let c = LineRateCalc::TEN_GIG;
        let gap = c.gap_ns(60, 1.0);
        assert!((gap - 67.2).abs() < 0.01, "{gap}");
        // Half utilization doubles the gap.
        assert!((c.gap_ns(60, 0.5) - 2.0 * gap).abs() < 1e-9);
    }

    #[test]
    fn utilization_round_trip() {
        let c = LineRateCalc::TEN_GIG;
        let fps = c.max_fps(1000) * 0.3;
        assert!((c.utilization(1000, fps) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn goodput_below_line_rate() {
        let c = LineRateCalc::TEN_GIG;
        // At 100% with 60 B frames: 60/(60+24) of 10G.
        let g = c.goodput_bps(60, 1.0);
        let expected = 10e9 * 60.0 / 84.0;
        assert!((g - expected).abs() / expected < 1e-12);
        assert!(g < 10e9);
    }

    #[test]
    #[should_panic(expected = "zero utilization")]
    fn zero_utilization_panics() {
        LineRateCalc::TEN_GIG.gap_ns(60, 0.0);
    }
}
