//! # flexsfp-traffic
//!
//! Deterministic workload generation for FlexSFP experiments:
//!
//! * [`rate`] — line-rate arithmetic (packets/s at a frame size, paced
//!   inter-arrival gaps, utilization → gap conversion);
//! * [`gen`] — seeded flow-based traffic generators with packet-size
//!   models (fixed, uniform, IMIX) and paced or bursty arrival
//!   processes;
//! * [`profiles`] — scenario presets: FTTH subscriber mix, enterprise
//!   edge, mobile fronthaul-like, DNS-heavy.
//!
//! All generators take an explicit seed and produce identical traces for
//! identical inputs, so every experiment in `flexsfp-bench` is exactly
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod profiles;
pub mod rate;
pub mod rng;

pub use gen::{ArrivalModel, SizeModel, TraceBuilder, TracePacket, TraceStream};
pub use rate::LineRateCalc;
pub use rng::{SplitMix64, Xoshiro256};
