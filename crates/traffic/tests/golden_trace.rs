//! Seed-stability golden tests for the in-tree PRNG and the traffic
//! generator.
//!
//! The deterministic-replay property (§"same builder always emits the
//! same trace, byte for byte") is what makes every benchmark in
//! `flexsfp-bench` reproducible. These tests pin it across releases:
//! a fixed seed must keep producing the exact same raw PRNG stream and
//! the exact same first-N packets — arrival timestamps and frame bytes
//! both — forever. An intentional change to the generator or the
//! xoshiro256** port must update the digests here, consciously.
//!
//! Runs with default features only; the digest is an in-tree FNV-1a.

use flexsfp_traffic::gen::{ArrivalModel, SizeModel, TraceBuilder, TracePacket};
use flexsfp_traffic::rng::Xoshiro256;

/// 64-bit FNV-1a over the concatenation fed so far.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Digest a trace: every packet's little-endian arrival time followed by
/// its frame bytes, all chained through one FNV-1a state.
fn trace_digest(trace: &[TracePacket]) -> u64 {
    let mut h = FNV_OFFSET;
    for p in trace {
        h = fnv1a(h, &p.arrival_ns.to_le_bytes());
        h = fnv1a(h, &p.frame);
    }
    h
}

#[test]
fn xoshiro_stream_is_seed_stable() {
    // First six outputs for seed 1 (SplitMix64-expanded), pinned.
    let mut r = Xoshiro256::seed_from_u64(1);
    let got: Vec<u64> = (0..6).map(|_| r.next_u64()).collect();
    assert_eq!(
        got,
        [
            0xb3f2_af6d_0fc7_10c5,
            0x853b_5596_4736_4cea,
            0x92f8_9756_082a_4514,
            0x642e_1c7b_c266_a3a7,
            0xb27a_48e2_9a23_3673,
            0x24c1_2312_6ffd_a722,
        ]
    );
}

#[test]
fn default_trace_first_64_packets_are_golden() {
    // Default builder (10G, 64 flows, IMIX, 50% paced) with a quarter of
    // the flows TCP. Seed 0x5eed_f00d, first 64 packets.
    let trace = TraceBuilder::new(0x5eed_f00d).tcp_share(0.25).build(64);
    assert_eq!(trace.len(), 64);
    assert_eq!(trace_digest(&trace), 0x73d7_765a_9dcd_1ece);
    // The digest covers timestamps too, but pin the span explicitly so a
    // failure here points at pacing rather than frame contents.
    assert_eq!(trace.last().unwrap().arrival_ns, 44_451);
}

#[test]
fn poisson_trace_first_64_packets_are_golden() {
    // Poisson arrivals exercise the exponential sampler (`Rng::exp`),
    // whose f64 path is the most fragile part of seed stability.
    let trace = TraceBuilder::new(7)
        .sizes(SizeModel::Fixed(256))
        .arrivals(ArrivalModel::Poisson { utilization: 0.4 })
        .flows(16)
        .build(64);
    assert_eq!(trace.len(), 64);
    assert_eq!(trace_digest(&trace), 0x9cc4_797e_d22a_631e);
    assert_eq!(trace.last().unwrap().arrival_ns, 31_903);
}

#[test]
fn streaming_reproduces_the_golden_digests() {
    // The streaming source must match the materialized path byte for
    // byte — same RNG stream, same frames, same arrival order — or the
    // fast path has silently diverged from the reference path. Digesting
    // the stream against the same pinned constants proves it.
    let streamed: Vec<TracePacket> = TraceBuilder::new(0x5eed_f00d)
        .tcp_share(0.25)
        .stream(64)
        .collect();
    assert_eq!(trace_digest(&streamed), 0x73d7_765a_9dcd_1ece);

    let poisson: Vec<TracePacket> = TraceBuilder::new(7)
        .sizes(SizeModel::Fixed(256))
        .arrivals(ArrivalModel::Poisson { utilization: 0.4 })
        .flows(16)
        .stream(64)
        .collect();
    assert_eq!(trace_digest(&poisson), 0x9cc4_797e_d22a_631e);
}

#[test]
fn streaming_matches_build_with_microbursts() {
    // Bursts interleave with the paced stream through a stable merge;
    // the streamed order must equal build()'s stable sort, ties included.
    let b = TraceBuilder::new(2)
        .sizes(SizeModel::Fixed(60))
        .arrivals(ArrivalModel::Paced { utilization: 0.01 })
        .microburst(1_000_000, 50)
        .microburst(500_000, 10);
    let built = b.build(100);
    let streamed: Vec<TracePacket> = b.stream(100).collect();
    assert_eq!(built.len(), streamed.len());
    assert_eq!(trace_digest(&built), trace_digest(&streamed));
    for (x, y) in built.iter().zip(&streamed) {
        assert_eq!(x.arrival_ns, y.arrival_ns);
        assert_eq!(x.frame, y.frame);
    }
}

#[test]
fn pooled_stream_is_allocation_bounded_and_identical() {
    use flexsfp_wire::PacketArena;
    let b = TraceBuilder::new(0x5eed_f00d).tcp_share(0.25);
    let reference = b.build(64);
    let arena = PacketArena::new();
    let mut digest = FNV_OFFSET;
    for (p, want) in b.stream_pooled(64, arena.clone()).zip(&reference) {
        assert_eq!(p.arrival_ns, want.arrival_ns);
        assert_eq!(p.frame, want.frame);
        digest = fnv1a(digest, &p.arrival_ns.to_le_bytes());
        digest = fnv1a(digest, &p.frame);
        arena.recycle(p.frame);
    }
    assert_eq!(digest, 0x73d7_765a_9dcd_1ece);
    // One frame in flight at a time => one buffer ever allocated.
    assert_eq!(arena.allocations(), 1);
    assert_eq!(arena.leases(), 64);
}

#[test]
fn rebuilding_reproduces_the_golden_digest() {
    // Replay stability: two independently constructed builders agree
    // with each other and with the pinned digest.
    let a = TraceBuilder::new(0x5eed_f00d).tcp_share(0.25).build(64);
    let b = TraceBuilder::new(0x5eed_f00d).tcp_share(0.25).build(64);
    assert_eq!(trace_digest(&a), trace_digest(&b));
    assert_eq!(trace_digest(&a), 0x73d7_765a_9dcd_1ece);
}
