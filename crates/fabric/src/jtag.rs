//! JTAG programming interface model.
//!
//! "During prototype phase, the bitstream is loaded via JTAG, while in
//! production artifacts are deployed remotely" (§4.2). The JTAG path is a
//! trusted, physical-access-only channel: no authentication, direct write
//! into a flash slot plus immediate device (re)configuration.

use crate::flash::{FlashError, SpiFlash};

/// The result of a JTAG programming session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JtagReport {
    /// Bytes written.
    pub bytes: usize,
    /// Flash slot used.
    pub slot: usize,
    /// IDCODE read back from the scan chain.
    pub idcode: u32,
}

/// A JTAG adapter attached to the module's test header.
#[derive(Debug, Clone)]
pub struct JtagAdapter {
    /// Device IDCODE on the scan chain (MPF200T family code).
    pub idcode: u32,
}

impl Default for JtagAdapter {
    fn default() -> Self {
        JtagAdapter {
            // PolarFire family IDCODE (manufacturer Microchip, family MPF).
            idcode: 0x0f81_81cf,
        }
    }
}

impl JtagAdapter {
    /// Scan the chain, returning the IDCODE.
    pub fn scan(&self) -> u32 {
        self.idcode
    }

    /// Program `image` into flash `slot` over JTAG (erases the slot
    /// first) and verify by read-back.
    pub fn program_slot(
        &self,
        flash: &mut SpiFlash,
        slot: usize,
        image: &[u8],
    ) -> Result<JtagReport, FlashError> {
        flash.write_slot(slot, image)?;
        let back = flash.read_slot(slot, image.len())?;
        debug_assert_eq!(back, image, "flash read-back mismatch");
        Ok(JtagReport {
            bytes: image.len(),
            slot,
            idcode: self.idcode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_returns_polarfire_idcode() {
        assert_eq!(JtagAdapter::default().scan(), 0x0f81_81cf);
    }

    #[test]
    fn program_and_verify() {
        let mut flash = SpiFlash::new();
        let adapter = JtagAdapter::default();
        let image = vec![0x5au8; 4096];
        let report = adapter.program_slot(&mut flash, 1, &image).unwrap();
        assert_eq!(report.bytes, 4096);
        assert_eq!(report.slot, 1);
        assert_eq!(flash.read_slot(1, 4096).unwrap(), &image[..]);
    }

    #[test]
    fn jtag_respects_golden_protection() {
        let mut flash = SpiFlash::new();
        flash.protect_golden();
        let adapter = JtagAdapter::default();
        assert_eq!(
            adapter.program_slot(&mut flash, 0, b"x"),
            Err(FlashError::WriteProtected)
        );
    }
}
