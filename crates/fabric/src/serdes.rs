//! Transceiver (SerDes) and 64b/66b PCS model.
//!
//! The prototype board exposes two bidirectional 12.7 Gb/s transceivers:
//! one toward the host edge connector, one toward the optical cage. A
//! 10GBASE-R lane signals at 10.3125 GBd and, after 64b/66b decoding,
//! delivers exactly 10.0 Gb/s of MAC-layer bits. Line-rate feasibility
//! throughout the workspace leans on this arithmetic.

/// Ethernet per-packet line overhead: 7 B preamble + 1 B SFD + 12 B IFG.
pub const LINE_OVERHEAD_BYTES: usize = 20;
/// Minimum Ethernet frame (with FCS) on the wire.
pub const MIN_FRAME_BYTES: usize = 64;
/// Maximum standard Ethernet frame (with FCS).
pub const MAX_FRAME_BYTES: usize = 1518;

/// Nominal line rates the model supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LineRate {
    /// 10GBASE-R: 10.3125 GBd, 10 Gb/s MAC rate.
    TenGig,
    /// 25GBASE-R: 25.78125 GBd, 25 Gb/s MAC rate.
    TwentyFiveGig,
    /// 4 × 25G (QSFP28-style): 100 Gb/s MAC rate.
    HundredGig,
}

impl LineRate {
    /// MAC-layer bit rate (after line coding).
    pub fn mac_bps(&self) -> u64 {
        match self {
            LineRate::TenGig => 10_000_000_000,
            LineRate::TwentyFiveGig => 25_000_000_000,
            LineRate::HundredGig => 100_000_000_000,
        }
    }

    /// Signalling rate in baud across all lanes (64b/66b coded).
    pub fn baud(&self) -> u64 {
        self.mac_bps() / 64 * 66
    }

    /// Maximum frames per second for `frame_len`-byte frames (incl. FCS),
    /// accounting for preamble + IFG.
    pub fn max_fps(&self, frame_len: usize) -> f64 {
        let bits_per_frame = ((frame_len + LINE_OVERHEAD_BYTES) * 8) as f64;
        self.mac_bps() as f64 / bits_per_frame
    }
}

/// Health state of one optical lane, driven by the failure model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OpticalHealth {
    /// Transmit optical power in dBm (healthy VCSEL ≈ -2 dBm).
    pub tx_power_dbm: f64,
    /// Laser bias current in mA (rises as a VCSEL wears out).
    pub bias_ma: f64,
}

impl Default for OpticalHealth {
    fn default() -> Self {
        OpticalHealth {
            tx_power_dbm: -2.0,
            bias_ma: 6.0,
        }
    }
}

/// One direction of a transceiver lane, with frame/byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LaneCounters {
    /// Frames transferred.
    pub frames: u64,
    /// Frame bytes transferred (excluding preamble/IFG).
    pub bytes: u64,
    /// Frames dropped due to signal errors.
    pub errors: u64,
}

/// A bidirectional transceiver: the electrical-edge or optical-side
/// SerDes of the module.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transceiver {
    /// Identifying label ("electrical", "optical").
    pub name: String,
    /// Configured line rate.
    pub rate: LineRate,
    /// Receive-direction counters.
    pub rx: LaneCounters,
    /// Transmit-direction counters.
    pub tx: LaneCounters,
    /// Optical health (meaningful for the optical-side lane).
    pub health: OpticalHealth,
    /// Receiver sensitivity threshold in dBm: below this, frames are lost.
    pub rx_sensitivity_dbm: f64,
    enabled: bool,
}

impl Transceiver {
    /// A healthy transceiver at `rate`.
    pub fn new(name: &str, rate: LineRate) -> Transceiver {
        Transceiver {
            name: name.into(),
            rate,
            rx: LaneCounters::default(),
            tx: LaneCounters::default(),
            health: OpticalHealth::default(),
            rx_sensitivity_dbm: -11.1, // 10GBASE-SR receiver sensitivity
            enabled: false,
        }
    }

    /// Enable the lane (the Mi-V control core does this at startup,
    /// configuring the laser driver and limiting amplifier).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disable the lane.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// True when the lane is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True when the link is usable: enabled and (for the optical
    /// direction) the laser still produces enough power for the far-end
    /// receiver, assuming `link_loss_db` of fiber/connector loss.
    pub fn link_up(&self, link_loss_db: f64) -> bool {
        self.enabled && self.health.tx_power_dbm - link_loss_db >= self.rx_sensitivity_dbm
    }

    /// Account one transmitted frame of `len` bytes. Returns false (and
    /// counts an error) if the lane is down.
    pub fn record_tx(&mut self, len: usize) -> bool {
        if !self.enabled {
            self.tx.errors += 1;
            return false;
        }
        self.tx.frames += 1;
        self.tx.bytes += len as u64;
        true
    }

    /// Account one received frame of `len` bytes.
    pub fn record_rx(&mut self, len: usize) -> bool {
        if !self.enabled {
            self.rx.errors += 1;
            return false;
        }
        self.rx.frames += 1;
        self.rx.bytes += len as u64;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gig_arithmetic() {
        assert_eq!(LineRate::TenGig.mac_bps(), 10_000_000_000);
        assert_eq!(LineRate::TenGig.baud(), 10_312_500_000);
        // The canonical 14.88 Mpps at 64-byte frames.
        let fps = LineRate::TenGig.max_fps(64);
        assert!((fps - 14_880_952.38).abs() < 1.0);
        // 812743 fps at 1518-byte frames.
        let fps_big = LineRate::TenGig.max_fps(1518);
        assert!((fps_big - 812_743.8).abs() < 1.0);
    }

    #[test]
    fn hundred_gig_scales() {
        assert_eq!(LineRate::HundredGig.baud(), 103_125_000_000);
        assert!(
            (LineRate::HundredGig.max_fps(64) / LineRate::TenGig.max_fps(64) - 10.0).abs() < 1e-9
        );
    }

    #[test]
    fn disabled_lane_drops() {
        let mut t = Transceiver::new("optical", LineRate::TenGig);
        assert!(!t.record_tx(64));
        assert_eq!(t.tx.errors, 1);
        t.enable();
        assert!(t.record_tx(64));
        assert!(t.record_rx(128));
        assert_eq!(t.tx.frames, 1);
        assert_eq!(t.rx.bytes, 128);
    }

    #[test]
    fn link_budget() {
        let mut t = Transceiver::new("optical", LineRate::TenGig);
        t.enable();
        // Healthy: -2 dBm - 3 dB loss = -5 dBm > -11.1 dBm.
        assert!(t.link_up(3.0));
        // Degraded VCSEL: -9 dBm - 3 dB = -12 dBm < sensitivity.
        t.health.tx_power_dbm = -9.0;
        assert!(!t.link_up(3.0));
        // But still fine on a short jumper with negligible loss.
        assert!(t.link_up(0.5));
    }

    #[test]
    fn disabled_lane_is_down() {
        let t = Transceiver::new("optical", LineRate::TenGig);
        assert!(!t.link_up(0.0));
    }
}
