//! SPI flash model.
//!
//! The prototype carries a 128 Mb (16 MiB) SPI flash that stores multiple
//! FPGA designs, "enabling the module to be reconfigurable at runtime"
//! (§4.3). The OTA reprogramming FSM in `flexsfp-core` writes a staged
//! bitstream here before triggering a reboot. The model enforces the two
//! physical realities that matter to that FSM: erase-before-write
//! semantics and sector granularity.

/// Total size: 128 Mb = 16 MiB.
pub const FLASH_BYTES: usize = 16 * 1024 * 1024;
/// Erase sector size (typical 64 KiB for this class of part).
pub const SECTOR_BYTES: usize = 64 * 1024;
/// Number of design slots the flash is partitioned into. Slot 0 is the
/// golden (factory fallback) image.
pub const SLOTS: usize = 4;
/// Bytes per slot.
pub const SLOT_BYTES: usize = FLASH_BYTES / SLOTS;

/// Errors from flash operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// Address or length out of device range.
    OutOfRange,
    /// Attempt to program bits 0→1 without an erase.
    NotErased,
    /// Slot index out of range.
    BadSlot,
    /// Image larger than a slot.
    ImageTooLarge,
    /// The golden slot (0) is write-protected.
    WriteProtected,
}

impl core::fmt::Display for FlashError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlashError::OutOfRange => write!(f, "address out of range"),
            FlashError::NotErased => write!(f, "programming unerased bytes"),
            FlashError::BadSlot => write!(f, "bad slot index"),
            FlashError::ImageTooLarge => write!(f, "image exceeds slot size"),
            FlashError::WriteProtected => write!(f, "golden slot is write-protected"),
        }
    }
}

impl std::error::Error for FlashError {}

/// The SPI flash device.
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpiFlash {
    data: Vec<u8>,
    /// Cumulative erase operations (wear proxy).
    pub erase_count: u64,
    /// Cumulative bytes programmed.
    pub programmed_bytes: u64,
    golden_protected: bool,
    /// One-shot fault injected with [`SpiFlash::inject_fault`]; the next
    /// erase or program consumes it and fails. Excluded from `serde`
    /// snapshots: a pending fault is test scaffolding, not device state.
    #[cfg_attr(feature = "serde", serde(skip))]
    injected_fault: Option<FlashError>,
}

impl std::fmt::Debug for SpiFlash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpiFlash")
            .field("bytes", &self.data.len())
            .field("erase_count", &self.erase_count)
            .field("programmed_bytes", &self.programmed_bytes)
            .finish()
    }
}

impl Default for SpiFlash {
    fn default() -> Self {
        Self::new()
    }
}

impl SpiFlash {
    /// A blank (all-0xFF) flash with the golden slot unprotected (so the
    /// factory can write it); call [`SpiFlash::protect_golden`] after.
    pub fn new() -> SpiFlash {
        SpiFlash {
            data: vec![0xff; FLASH_BYTES],
            erase_count: 0,
            programmed_bytes: 0,
            golden_protected: false,
            injected_fault: None,
        }
    }

    /// Enable write protection of slot 0.
    pub fn protect_golden(&mut self) {
        self.golden_protected = true;
    }

    /// Arm a one-shot fault: the next erase or program operation fails
    /// with `err` instead of touching the array. Deterministic
    /// fault-injection hook for exercising flash-failure paths (a real
    /// part fails this way on a worn sector or a brown-out mid-write).
    pub fn inject_fault(&mut self, err: FlashError) {
        self.injected_fault = Some(err);
    }

    fn take_injected_fault(&mut self) -> Result<(), FlashError> {
        match self.injected_fault.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Erase the sector containing `addr` (sets it to 0xFF).
    pub fn erase_sector(&mut self, addr: usize) -> Result<(), FlashError> {
        if addr >= FLASH_BYTES {
            return Err(FlashError::OutOfRange);
        }
        let start = addr - (addr % SECTOR_BYTES);
        if self.golden_protected && start < SLOT_BYTES {
            return Err(FlashError::WriteProtected);
        }
        self.take_injected_fault()?;
        self.data[start..start + SECTOR_BYTES].fill(0xff);
        self.erase_count += 1;
        Ok(())
    }

    /// Program `bytes` at `addr`. Flash programming can only clear bits
    /// (1→0); setting a 0 bit back to 1 requires an erase first.
    pub fn program(&mut self, addr: usize, bytes: &[u8]) -> Result<(), FlashError> {
        let end = addr
            .checked_add(bytes.len())
            .ok_or(FlashError::OutOfRange)?;
        if end > FLASH_BYTES {
            return Err(FlashError::OutOfRange);
        }
        if self.golden_protected && addr < SLOT_BYTES {
            return Err(FlashError::WriteProtected);
        }
        self.take_injected_fault()?;
        // Check erase state: every programmed bit must currently be 1
        // wherever the new value wants a 1... more precisely new & !old
        // must be 0 (cannot set bits).
        for (old, new) in self.data[addr..end].iter().zip(bytes) {
            if *new & !*old != 0 {
                return Err(FlashError::NotErased);
            }
        }
        self.data[addr..end].copy_from_slice(bytes);
        self.programmed_bytes += bytes.len() as u64;
        Ok(())
    }

    /// Read `len` bytes at `addr`.
    pub fn read(&self, addr: usize, len: usize) -> Result<&[u8], FlashError> {
        let end = addr.checked_add(len).ok_or(FlashError::OutOfRange)?;
        if end > FLASH_BYTES {
            return Err(FlashError::OutOfRange);
        }
        Ok(&self.data[addr..end])
    }

    /// Base address of design slot `slot`.
    pub fn slot_base(slot: usize) -> Result<usize, FlashError> {
        if slot >= SLOTS {
            return Err(FlashError::BadSlot);
        }
        Ok(slot * SLOT_BYTES)
    }

    /// Erase a whole slot and program `image` into it.
    pub fn write_slot(&mut self, slot: usize, image: &[u8]) -> Result<(), FlashError> {
        if image.len() > SLOT_BYTES {
            return Err(FlashError::ImageTooLarge);
        }
        let base = Self::slot_base(slot)?;
        if self.golden_protected && slot == 0 {
            return Err(FlashError::WriteProtected);
        }
        let mut a = base;
        while a < base + SLOT_BYTES {
            self.erase_sector(a)?;
            a += SECTOR_BYTES;
        }
        self.program(base, image)
    }

    /// Read back `len` bytes of slot `slot`.
    pub fn read_slot(&self, slot: usize, len: usize) -> Result<&[u8], FlashError> {
        if len > SLOT_BYTES {
            return Err(FlashError::ImageTooLarge);
        }
        let base = Self::slot_base(slot)?;
        self.read(base, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_requires_erase() {
        let mut f = SpiFlash::new();
        f.program(0x100, &[0x00, 0x0f]).unwrap();
        // Re-programming to clear more bits is fine...
        f.program(0x101, &[0x0e]).unwrap();
        // ...but setting bits back needs an erase.
        assert_eq!(f.program(0x100, &[0x01]), Err(FlashError::NotErased));
        f.golden_protected = false;
        f.erase_sector(0x100).unwrap();
        f.program(0x100, &[0x01]).unwrap();
        assert_eq!(f.read(0x100, 1).unwrap(), &[0x01]);
    }

    #[test]
    fn erase_is_sector_granular() {
        let mut f = SpiFlash::new();
        f.program(SECTOR_BYTES, &[0]).unwrap();
        f.program(2 * SECTOR_BYTES - 1, &[0]).unwrap();
        f.program(2 * SECTOR_BYTES, &[0]).unwrap();
        f.erase_sector(SECTOR_BYTES + 5).unwrap();
        // Whole first-sector span is back to 0xFF…
        assert_eq!(f.read(SECTOR_BYTES, 1).unwrap(), &[0xff]);
        assert_eq!(f.read(2 * SECTOR_BYTES - 1, 1).unwrap(), &[0xff]);
        // …but the neighbouring sector is untouched.
        assert_eq!(f.read(2 * SECTOR_BYTES, 1).unwrap(), &[0x00]);
        assert_eq!(f.erase_count, 1);
    }

    #[test]
    fn slot_round_trip() {
        let mut f = SpiFlash::new();
        let image: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        f.write_slot(2, &image).unwrap();
        assert_eq!(f.read_slot(2, image.len()).unwrap(), &image[..]);
        // Rewrite works because write_slot erases first.
        let image2 = vec![0xabu8; 500];
        f.write_slot(2, &image2).unwrap();
        assert_eq!(f.read_slot(2, 500).unwrap(), &image2[..]);
    }

    #[test]
    fn golden_slot_protection() {
        let mut f = SpiFlash::new();
        f.write_slot(0, b"golden image").unwrap();
        f.protect_golden();
        assert_eq!(f.write_slot(0, b"evil"), Err(FlashError::WriteProtected));
        assert_eq!(f.program(10, &[0]), Err(FlashError::WriteProtected));
        assert_eq!(f.erase_sector(0), Err(FlashError::WriteProtected));
        // Other slots unaffected.
        f.write_slot(1, b"app").unwrap();
        assert_eq!(f.read_slot(0, 12).unwrap(), b"golden image");
    }

    #[test]
    fn range_checks() {
        let mut f = SpiFlash::new();
        assert_eq!(f.program(FLASH_BYTES, &[0]), Err(FlashError::OutOfRange));
        assert_eq!(f.read(FLASH_BYTES - 1, 2), Err(FlashError::OutOfRange));
        assert_eq!(SpiFlash::slot_base(SLOTS), Err(FlashError::BadSlot));
        assert_eq!(
            f.write_slot(1, &vec![0u8; SLOT_BYTES + 1]),
            Err(FlashError::ImageTooLarge)
        );
    }

    #[test]
    fn injected_fault_fires_once() {
        let mut f = SpiFlash::new();
        f.inject_fault(FlashError::NotErased);
        assert_eq!(
            f.write_slot(1, b"payload"),
            Err(FlashError::NotErased),
            "armed fault must fail the next write"
        );
        // The fault is one-shot: the retry succeeds.
        f.write_slot(1, b"payload").unwrap();
        assert_eq!(f.read_slot(1, 7).unwrap(), b"payload");
    }

    #[test]
    fn capacity_is_128_mbit() {
        assert_eq!(FLASH_BYTES * 8, 128 * 1024 * 1024);
        assert_eq!(SLOT_BYTES, 4 * 1024 * 1024);
    }
}
