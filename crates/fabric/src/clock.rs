//! Clock domains and cycle/time conversion.
//!
//! The FlexSFP prototype clocks its 64-bit datapath at 156.25 MHz — the
//! canonical 10GbE XGMII-style rate (64 b × 156.25 MHz = 10 Gb/s). The
//! Two-Way-Core shell raises the PPE clock to absorb the doubled packet
//! rate; [`ClockDomain`] makes such ratios explicit.

/// One picosecond in femtoseconds, the internal time base. Femtoseconds
/// keep integer arithmetic exact at 312.5 MHz (3 200 000 fs period).
const FS_PER_PS: u64 = 1_000;

/// A fixed-frequency clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClockDomain {
    hz: u64,
}

impl ClockDomain {
    /// The prototype datapath clock: 156.25 MHz.
    pub const XGMII_10G: ClockDomain = ClockDomain { hz: 156_250_000 };
    /// The doubled clock the paper proposes for the Two-Way-Core PPE.
    pub const XGMII_10G_X2: ClockDomain = ClockDomain { hz: 312_500_000 };

    /// A domain at `hz` hertz. Panics on a zero frequency.
    pub fn from_hz(hz: u64) -> ClockDomain {
        assert!(hz > 0, "clock frequency must be non-zero");
        ClockDomain { hz }
    }

    /// A domain at `mhz` megahertz.
    pub fn from_mhz(mhz: f64) -> ClockDomain {
        ClockDomain::from_hz((mhz * 1e6).round() as u64)
    }

    /// Frequency in hertz.
    pub fn hz(&self) -> u64 {
        self.hz
    }

    /// Frequency in megahertz.
    pub fn mhz(&self) -> f64 {
        self.hz as f64 / 1e6
    }

    /// Period of one cycle in femtoseconds (exact for frequencies that
    /// divide 10^15, which all realistic fabric clocks do).
    pub fn period_fs(&self) -> u64 {
        1_000_000_000_000_000 / self.hz
    }

    /// Period in picoseconds (rounded down).
    pub fn period_ps(&self) -> u64 {
        self.period_fs() / FS_PER_PS
    }

    /// Nanoseconds covered by `cycles` cycles, as f64.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.period_fs() as f64 / 1e6
    }

    /// Cycles elapsed in `ns` nanoseconds (rounded up — a partial cycle
    /// still occupies the pipeline).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * 1e6 / self.period_fs() as f64).ceil() as u64
    }

    /// A domain scaled by an integer multiplier (e.g. ×2 for the
    /// Two-Way-Core PPE clock).
    pub fn scaled(&self, factor: u64) -> ClockDomain {
        ClockDomain::from_hz(self.hz * factor)
    }

    /// Bits per second moved by a `width_bits`-wide bus in this domain.
    pub fn bus_bits_per_sec(&self, width_bits: u32) -> u64 {
        self.hz * u64::from(width_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xgmii_carries_exactly_10g_on_64b() {
        assert_eq!(ClockDomain::XGMII_10G.bus_bits_per_sec(64), 10_000_000_000);
    }

    #[test]
    fn doubled_clock_carries_20g() {
        assert_eq!(
            ClockDomain::XGMII_10G_X2.bus_bits_per_sec(64),
            20_000_000_000
        );
        assert_eq!(ClockDomain::XGMII_10G.scaled(2), ClockDomain::XGMII_10G_X2);
    }

    #[test]
    fn period_is_exact() {
        assert_eq!(ClockDomain::XGMII_10G.period_fs(), 6_400_000);
        assert_eq!(ClockDomain::XGMII_10G.period_ps(), 6_400);
        assert_eq!(ClockDomain::XGMII_10G_X2.period_fs(), 3_200_000);
    }

    #[test]
    fn time_conversions_round_trip() {
        let c = ClockDomain::XGMII_10G;
        assert!((c.cycles_to_ns(156_250_000) - 1e9).abs() < 1.0);
        assert_eq!(c.ns_to_cycles(6.4), 1);
        assert_eq!(c.ns_to_cycles(6.5), 2); // partial cycle rounds up
        assert_eq!(c.ns_to_cycles(0.0), 0);
    }

    #[test]
    fn from_mhz() {
        assert_eq!(ClockDomain::from_mhz(156.25), ClockDomain::XGMII_10G);
        assert_eq!(ClockDomain::from_mhz(100.0).hz(), 100_000_000);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        ClockDomain::from_hz(0);
    }
}
