//! Calibrated module power model.
//!
//! The paper's §5 testbed measures three operating points on a
//! Thunderbolt 10G NIC under line-rate stress: 3.800 W with the cage
//! empty, 4.693 W with a standard SFP+ (≈ 0.9 W for the module) and
//! 5.320 W with the FlexSFP (≈ 1.5 W, i.e. ≈ 0.7 W of added FPGA power).
//! This model decomposes module power into optics (static + traffic-
//! proportional), FPGA static, per-SerDes-lane and fabric-dynamic terms;
//! the constants are calibrated so that the prototype NAT design at
//! 156.25 MHz under full load reproduces the measured deltas.

use crate::clock::ClockDomain;
use crate::resources::ResourceManifest;

/// Decomposed module power, watts.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerBreakdown {
    /// Optical subsystem: laser driver, VCSEL bias, limiting amp, CDR.
    pub optics_w: f64,
    /// FPGA static (leakage + configuration) power.
    pub fpga_static_w: f64,
    /// Enabled SerDes lanes.
    pub serdes_w: f64,
    /// Fabric dynamic power (clock × active resources × activity).
    pub fabric_dynamic_w: f64,
}

impl PowerBreakdown {
    /// Total module power.
    pub fn total_w(&self) -> f64 {
        self.optics_w + self.fpga_static_w + self.serdes_w + self.fabric_dynamic_w
    }
}

/// SFP+ MSA power classification levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PowerClass {
    /// Power Level I: ≤ 1.0 W.
    Level1,
    /// Power Level II: ≤ 1.5 W.
    Level2,
    /// Power Level III: ≤ 2.0 W.
    Level3,
    /// Power Level IV: ≤ 2.5 W.
    Level4,
}

impl PowerClass {
    /// The class ceiling in watts.
    pub fn limit_w(&self) -> f64 {
        match self {
            PowerClass::Level1 => 1.0,
            PowerClass::Level2 => 1.5,
            PowerClass::Level3 => 2.0,
            PowerClass::Level4 => 2.5,
        }
    }

    /// Classify a power draw; `None` if it exceeds every SFP+ class
    /// (i.e. needs a bigger form factor — the §5.3 scaling cliff).
    pub fn classify(watts: f64) -> Option<PowerClass> {
        const EPS: f64 = 1e-9;
        [
            PowerClass::Level1,
            PowerClass::Level2,
            PowerClass::Level3,
            PowerClass::Level4,
        ]
        .into_iter()
        .find(|&c| watts <= c.limit_w() + EPS)
    }
}

/// The power model with calibration constants.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerModel {
    /// Optics power at idle (laser bias etc.).
    pub optics_static_w: f64,
    /// Additional optics power at 100 % line utilization.
    pub optics_dynamic_max_w: f64,
    /// FPGA static power (0 for a standard SFP).
    pub fpga_static_w: f64,
    /// Power per enabled SerDes lane.
    pub serdes_lane_w: f64,
    /// Fabric dynamic coefficient, W per (MHz × kUnit × activity),
    /// where a design's "units" are `lut4 + ff + 100·(usram + lsram)`.
    pub fabric_k: f64,
}

impl PowerModel {
    /// Calibrated model of the FlexSFP prototype (MPF200T, 28 nm).
    ///
    /// At the §5 stress point (NAT design, 2 lanes, 156.25 MHz, full
    /// activity) this produces 1.520 W, matching the measured
    /// 5.320 W − 3.800 W delta; with the FPGA terms zeroed it produces
    /// the standard SFP's 0.893 W.
    pub fn flexsfp_prototype() -> PowerModel {
        PowerModel {
            optics_static_w: 0.400,
            optics_dynamic_max_w: 0.493,
            fpga_static_w: 0.150,
            serdes_lane_w: 0.140,
            fabric_k: 1.246_18e-5,
        }
    }

    /// A standard (non-programmable) SFP+: optics only.
    pub fn standard_sfp() -> PowerModel {
        PowerModel {
            fpga_static_w: 0.0,
            serdes_lane_w: 0.0,
            fabric_k: 0.0,
            ..Self::flexsfp_prototype()
        }
    }

    /// "Active units" of a design for the dynamic term: LUTs and FFs
    /// count 1 each, each SRAM block counts 100 (clock tree + sense
    /// amps dominate small-block energy).
    pub fn active_units(design: &ResourceManifest) -> f64 {
        (design.lut4 + design.ff + 100 * (design.usram + design.lsram)) as f64
    }

    /// Compute module power.
    ///
    /// * `design` — resources actually toggling (the whole used design);
    /// * `clock` — fabric clock of the PPE datapath;
    /// * `lanes` — enabled SerDes lanes (2 for a normal module);
    /// * `line_utilization` — offered traffic as a fraction of line rate
    ///   (drives optics modulation power), 0..=1;
    /// * `activity` — fabric switching activity factor, 0..=1 (1 at
    ///   line-rate packet processing).
    pub fn power(
        &self,
        design: &ResourceManifest,
        clock: ClockDomain,
        lanes: u32,
        line_utilization: f64,
        activity: f64,
    ) -> PowerBreakdown {
        let u = line_utilization.clamp(0.0, 1.0);
        let a = activity.clamp(0.0, 1.0);
        PowerBreakdown {
            optics_w: self.optics_static_w + self.optics_dynamic_max_w * u,
            fpga_static_w: self.fpga_static_w,
            serdes_w: self.serdes_lane_w * f64::from(lanes),
            fabric_dynamic_w: self.fabric_k
                * clock.mhz()
                * (Self::active_units(design) / 1000.0)
                * a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::table1;

    fn nat_design() -> ResourceManifest {
        table1::USED
    }

    #[test]
    fn standard_sfp_stress_matches_paper() {
        let m = PowerModel::standard_sfp();
        let p = m.power(&ResourceManifest::ZERO, ClockDomain::XGMII_10G, 0, 1.0, 0.0);
        // Paper: SFP draws ~0.9 W under line-rate stress (4.693 - 3.800).
        assert!((p.total_w() - 0.893).abs() < 0.005, "got {}", p.total_w());
    }

    #[test]
    fn flexsfp_stress_matches_paper() {
        let m = PowerModel::flexsfp_prototype();
        let p = m.power(&nat_design(), ClockDomain::XGMII_10G, 2, 1.0, 1.0);
        // Paper: FlexSFP draws ~1.5 W (5.320 - 3.800).
        assert!((p.total_w() - 1.520).abs() < 0.01, "got {}", p.total_w());
        // The FPGA adds ~0.7 W over a standard SFP.
        let sfp = PowerModel::standard_sfp()
            .power(&ResourceManifest::ZERO, ClockDomain::XGMII_10G, 0, 1.0, 0.0)
            .total_w();
        let delta = p.total_w() - sfp;
        assert!((delta - 0.627).abs() < 0.01, "delta {delta}");
    }

    #[test]
    fn flexsfp_stays_in_sfp_power_envelope() {
        // The paper's claim: FlexSFP stays within the 1–3 W transceiver
        // envelope (SFP+ Level II/III).
        let m = PowerModel::flexsfp_prototype();
        let p = m.power(&nat_design(), ClockDomain::XGMII_10G, 2, 1.0, 1.0);
        let class = PowerClass::classify(p.total_w()).expect("fits an SFP+ class");
        assert!(matches!(class, PowerClass::Level2 | PowerClass::Level3));
    }

    #[test]
    fn idle_module_draws_less() {
        let m = PowerModel::flexsfp_prototype();
        let idle = m.power(&nat_design(), ClockDomain::XGMII_10G, 2, 0.0, 0.0);
        let busy = m.power(&nat_design(), ClockDomain::XGMII_10G, 2, 1.0, 1.0);
        assert!(idle.total_w() < busy.total_w());
        // Static floor: optics bias + FPGA static + lanes.
        assert!((idle.total_w() - (0.400 + 0.150 + 0.280)).abs() < 1e-9);
    }

    #[test]
    fn doubling_clock_increases_fabric_power_linearly() {
        let m = PowerModel::flexsfp_prototype();
        let d = nat_design();
        let p1 = m.power(&d, ClockDomain::XGMII_10G, 2, 1.0, 1.0);
        let p2 = m.power(&d, ClockDomain::XGMII_10G_X2, 2, 1.0, 1.0);
        let ratio = p2.fabric_dynamic_w / p1.fabric_dynamic_w;
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamped() {
        let m = PowerModel::flexsfp_prototype();
        let p = m.power(&nat_design(), ClockDomain::XGMII_10G, 2, 7.0, -3.0);
        assert!((p.optics_w - 0.893).abs() < 1e-9);
        assert_eq!(p.fabric_dynamic_w, 0.0);
    }

    #[test]
    fn power_class_boundaries() {
        assert_eq!(PowerClass::classify(0.9), Some(PowerClass::Level1));
        assert_eq!(PowerClass::classify(1.0), Some(PowerClass::Level1));
        assert_eq!(PowerClass::classify(1.5), Some(PowerClass::Level2));
        assert_eq!(PowerClass::classify(2.4), Some(PowerClass::Level4));
        assert_eq!(PowerClass::classify(3.1), None);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = PowerModel::flexsfp_prototype();
        let p = m.power(&nat_design(), ClockDomain::XGMII_10G, 2, 0.5, 0.5);
        let sum = p.optics_w + p.fpga_static_w + p.serdes_w + p.fabric_dynamic_w;
        assert!((p.total_w() - sum).abs() < 1e-12);
    }
}
