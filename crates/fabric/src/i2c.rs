//! SFP management interface: I2C with SFF-8472 digital optical
//! monitoring (DOM).
//!
//! Every SFP exposes two I2C devices: A0h (identification EEPROM) and A2h
//! (diagnostics). The FlexSFP keeps this interface — the host's standard
//! `ethtool -m`-style tooling must keep working — while the paper's §3
//! monitoring use case additionally reads DOM values *from inside* the
//! module to detect laser degradation and link faults.

use crate::serdes::OpticalHealth;

/// I2C address of the identification EEPROM.
pub const ADDR_A0: u8 = 0x50;
/// I2C address of the diagnostics page.
pub const ADDR_A2: u8 = 0x51;

/// Decoded SFF-8472 diagnostic values.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DomReading {
    /// Module temperature in °C.
    pub temperature_c: f64,
    /// Supply voltage in volts.
    pub vcc_v: f64,
    /// Laser bias current in mA.
    pub tx_bias_ma: f64,
    /// Transmit optical power in mW.
    pub tx_power_mw: f64,
    /// Receive optical power in mW.
    pub rx_power_mw: f64,
}

impl DomReading {
    /// TX power in dBm.
    pub fn tx_power_dbm(&self) -> f64 {
        10.0 * self.tx_power_mw.max(1e-6).log10()
    }

    /// RX power in dBm.
    pub fn rx_power_dbm(&self) -> f64 {
        10.0 * self.rx_power_mw.max(1e-6).log10()
    }
}

/// The module's management EEPROM + diagnostics, as seen over I2C.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ManagementInterface {
    a0: Vec<u8>,
    a2: Vec<u8>,
}

impl Default for ManagementInterface {
    fn default() -> Self {
        Self::new("FLEXSFP", "FSFP-10G-PR", "S000001")
    }
}

impl ManagementInterface {
    /// Build an interface with identification strings in the standard
    /// SFF-8472 A0h layout (vendor at 20..36, PN at 40..56, SN at 68..84).
    pub fn new(vendor: &str, part_number: &str, serial: &str) -> ManagementInterface {
        let mut a0 = vec![0u8; 256];
        a0[0] = 0x03; // identifier: SFP/SFP+
        a0[2] = 0x07; // connector: LC
        a0[12] = 103; // nominal bitrate, units of 100 Mb/s (10.3G)
        write_padded(&mut a0[20..36], vendor);
        write_padded(&mut a0[40..56], part_number);
        write_padded(&mut a0[68..84], serial);
        a0[92] = 0x68; // DOM implemented, internally calibrated
        ManagementInterface {
            a0,
            a2: vec![0u8; 256],
        }
    }

    /// Raw read of `len` bytes at `offset` from device `addr`
    /// (A0h or A2h). Reads wrap like real EEPROMs do not — out-of-range
    /// requests are truncated at 256.
    pub fn read(&self, addr: u8, offset: usize, len: usize) -> Option<&[u8]> {
        let page = match addr {
            ADDR_A0 => &self.a0,
            ADDR_A2 => &self.a2,
            _ => return None,
        };
        let end = (offset + len).min(page.len());
        if offset >= page.len() {
            return None;
        }
        Some(&page[offset..end])
    }

    /// Vendor name (trimmed).
    pub fn vendor(&self) -> String {
        String::from_utf8_lossy(&self.a0[20..36]).trim_end().into()
    }

    /// Part number (trimmed).
    pub fn part_number(&self) -> String {
        String::from_utf8_lossy(&self.a0[40..56]).trim_end().into()
    }

    /// Serial number (trimmed).
    pub fn serial(&self) -> String {
        String::from_utf8_lossy(&self.a0[68..84]).trim_end().into()
    }

    /// Update the A2h diagnostics page from physical state. Encodings per
    /// SFF-8472: temp = signed 1/256 °C, vcc = 100 µV units,
    /// bias = 2 µA units, power = 0.1 µW units.
    pub fn update_dom(
        &mut self,
        temperature_c: f64,
        vcc_v: f64,
        optical: &OpticalHealth,
        rx_power_mw: f64,
    ) {
        let temp = (temperature_c * 256.0) as i16;
        self.a2[96..98].copy_from_slice(&temp.to_be_bytes());
        let vcc = (vcc_v / 100e-6) as u16;
        self.a2[98..100].copy_from_slice(&vcc.to_be_bytes());
        let bias = (optical.bias_ma * 1000.0 / 2.0) as u16;
        self.a2[100..102].copy_from_slice(&bias.to_be_bytes());
        let tx_mw = 10f64.powf(optical.tx_power_dbm / 10.0);
        let tx = (tx_mw * 10_000.0) as u16;
        self.a2[102..104].copy_from_slice(&tx.to_be_bytes());
        let rx = (rx_power_mw * 10_000.0) as u16;
        self.a2[104..106].copy_from_slice(&rx.to_be_bytes());
    }

    /// Decode the current diagnostics page.
    pub fn read_dom(&self) -> DomReading {
        let temp = i16::from_be_bytes([self.a2[96], self.a2[97]]);
        let vcc = u16::from_be_bytes([self.a2[98], self.a2[99]]);
        let bias = u16::from_be_bytes([self.a2[100], self.a2[101]]);
        let tx = u16::from_be_bytes([self.a2[102], self.a2[103]]);
        let rx = u16::from_be_bytes([self.a2[104], self.a2[105]]);
        DomReading {
            temperature_c: f64::from(temp) / 256.0,
            vcc_v: f64::from(vcc) * 100e-6,
            tx_bias_ma: f64::from(bias) * 2.0 / 1000.0,
            tx_power_mw: f64::from(tx) / 10_000.0,
            rx_power_mw: f64::from(rx) / 10_000.0,
        }
    }
}

fn write_padded(dst: &mut [u8], s: &str) {
    dst.fill(b' ');
    let bytes = s.as_bytes();
    let n = bytes.len().min(dst.len());
    dst[..n].copy_from_slice(&bytes[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identification_fields() {
        let m = ManagementInterface::new("AXBRYD", "FSFP-10G-PR", "SN12345");
        assert_eq!(m.vendor(), "AXBRYD");
        assert_eq!(m.part_number(), "FSFP-10G-PR");
        assert_eq!(m.serial(), "SN12345");
        // SFP identifier byte.
        assert_eq!(m.read(ADDR_A0, 0, 1).unwrap(), &[0x03]);
    }

    #[test]
    fn dom_encode_decode_round_trip() {
        let mut m = ManagementInterface::default();
        let health = OpticalHealth {
            tx_power_dbm: -2.0,
            bias_ma: 6.5,
        };
        m.update_dom(41.25, 3.3, &health, 0.4);
        let d = m.read_dom();
        assert!((d.temperature_c - 41.25).abs() < 0.01);
        assert!((d.vcc_v - 3.3).abs() < 0.001);
        assert!((d.tx_bias_ma - 6.5).abs() < 0.01);
        assert!((d.tx_power_dbm() - -2.0).abs() < 0.05);
        assert!((d.rx_power_mw - 0.4).abs() < 0.001);
    }

    #[test]
    fn negative_temperature() {
        let mut m = ManagementInterface::default();
        m.update_dom(-10.5, 3.3, &OpticalHealth::default(), 0.1);
        assert!((m.read_dom().temperature_c - -10.5).abs() < 0.01);
    }

    #[test]
    fn unknown_address_rejected() {
        let m = ManagementInterface::default();
        assert!(m.read(0x42, 0, 4).is_none());
        assert!(m.read(ADDR_A0, 300, 4).is_none());
    }

    #[test]
    fn reads_truncate_at_page_end() {
        let m = ManagementInterface::default();
        assert_eq!(m.read(ADDR_A0, 250, 20).unwrap().len(), 6);
    }
}
