//! The word-oriented streaming datapath.
//!
//! Inside the FPGA, packets move as a stream of fixed-width bus words
//! (64 bit in the prototype; §5.3 discusses widening to 512 bit for
//! 100 G). [`segment`] turns a packet into its word stream exactly as the
//! Ethernet IP core's AXI-Stream output would, and [`DatapathConfig`]
//! carries the width × clock arithmetic that decides whether a pipeline
//! sustains line rate.

use crate::clock::ClockDomain;

/// One beat of the streaming bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusWord {
    /// Up to 64 bytes of data (512-bit maximum width).
    pub data: [u8; 64],
    /// Number of valid bytes in `data` (1..=width_bytes).
    pub keep: u8,
    /// First beat of a packet.
    pub sof: bool,
    /// Last beat of a packet.
    pub eof: bool,
}

impl BusWord {
    /// The valid bytes of this beat.
    pub fn bytes(&self) -> &[u8] {
        &self.data[..usize::from(self.keep)]
    }
}

/// Datapath width in bits; only power-of-two widths realizable on the
/// fabric are allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BusWidth {
    /// 64-bit datapath (the SFP+ prototype).
    W64,
    /// 128-bit datapath.
    W128,
    /// 256-bit datapath.
    W256,
    /// 512-bit datapath (the §5.3 100 G scaling point).
    W512,
}

impl BusWidth {
    /// Width in bits.
    pub fn bits(&self) -> u32 {
        match self {
            BusWidth::W64 => 64,
            BusWidth::W128 => 128,
            BusWidth::W256 => 256,
            BusWidth::W512 => 512,
        }
    }

    /// Width in bytes.
    pub fn bytes(&self) -> usize {
        self.bits() as usize / 8
    }

    /// All supported widths, narrowest first.
    pub fn all() -> [BusWidth; 4] {
        [
            BusWidth::W64,
            BusWidth::W128,
            BusWidth::W256,
            BusWidth::W512,
        ]
    }
}

/// A datapath configuration: bus width and clock domain.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DatapathConfig {
    /// Bus width.
    pub width: BusWidth,
    /// Clock domain the bus runs in.
    pub clock: ClockDomain,
}

impl DatapathConfig {
    /// The prototype configuration: 64 b @ 156.25 MHz = 10 Gb/s.
    pub fn prototype_10g() -> DatapathConfig {
        DatapathConfig {
            width: BusWidth::W64,
            clock: ClockDomain::XGMII_10G,
        }
    }

    /// Raw bus bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.clock.bus_bits_per_sec(self.width.bits())
    }

    /// Beats needed to stream a `len`-byte packet (ceiling division; a
    /// partial final beat still takes a cycle).
    pub fn beats_for(&self, len: usize) -> u64 {
        (len as u64).div_ceil(self.width.bytes() as u64)
    }

    /// Cycles the bus is occupied by a `len`-byte packet.
    pub fn occupancy_cycles(&self, len: usize) -> u64 {
        self.beats_for(len)
    }

    /// Maximum sustainable packet rate (packets/s) for fixed-size `len`
    /// packets, limited purely by bus occupancy (back-to-back beats).
    pub fn max_pps(&self, len: usize) -> f64 {
        self.clock.hz() as f64 / self.beats_for(len) as f64
    }

    /// Effective payload throughput (bits/s) for fixed-size `len` packets,
    /// accounting for the partially-filled final beat.
    pub fn effective_bps(&self, len: usize) -> f64 {
        self.max_pps(len) * (len as f64) * 8.0
    }

    /// True if this datapath can sustain `line_rate_bps` of Ethernet
    /// traffic at the worst-case (smallest) frame size. `min_frame` is the
    /// frame length on the wire excluding preamble/IFG (64 B for
    /// standard Ethernet); the line-side per-packet overhead of
    /// preamble + IFG (20 B) *relieves* the datapath, which only carries
    /// the frame bytes.
    pub fn sustains_line_rate(&self, line_rate_bps: u64, min_frame: usize) -> bool {
        // Packets per second arriving from the line at minimum size:
        let wire_bits_per_pkt = ((min_frame + 20) * 8) as f64;
        let arrival_pps = line_rate_bps as f64 / wire_bits_per_pkt;
        self.max_pps(min_frame) >= arrival_pps
    }
}

/// Segment a packet into bus words of the given width.
pub fn segment(packet: &[u8], width: BusWidth) -> Vec<BusWord> {
    let wb = width.bytes();
    if packet.is_empty() {
        return Vec::new();
    }
    let n = packet.len().div_ceil(wb);
    let mut out = Vec::with_capacity(n);
    for (i, chunk) in packet.chunks(wb).enumerate() {
        let mut data = [0u8; 64];
        data[..chunk.len()].copy_from_slice(chunk);
        out.push(BusWord {
            data,
            keep: chunk.len() as u8,
            sof: i == 0,
            eof: i == n - 1,
        });
    }
    out
}

/// Reassemble a packet from its word stream (inverse of [`segment`]).
pub fn reassemble(words: &[BusWord]) -> Vec<u8> {
    // Every beat but the last carries the full bus width, so the first
    // beat's keep is the word size: reserving `beats × width` is exact
    // (within one beat) for any bus, where the old `beats × 8` hint
    // under-reserved up to 8× on W128–W512 and reallocated mid-copy.
    let width_bytes = words.first().map_or(0, |w| usize::from(w.keep));
    let mut out = Vec::with_capacity(words.len() * width_bytes);
    for w in words {
        out.extend_from_slice(w.bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_reassemble_round_trip() {
        let pkt: Vec<u8> = (0..150u8).collect();
        for width in BusWidth::all() {
            let words = segment(&pkt, width);
            assert!(words[0].sof);
            assert!(words.last().unwrap().eof);
            assert_eq!(reassemble(&words), pkt);
        }
    }

    #[test]
    fn beat_counts() {
        let cfg = DatapathConfig::prototype_10g();
        assert_eq!(cfg.beats_for(64), 8);
        assert_eq!(cfg.beats_for(65), 9);
        assert_eq!(cfg.beats_for(1), 1);
        assert_eq!(cfg.beats_for(1518), 190);
        let words = segment(&[0u8; 65], BusWidth::W64);
        assert_eq!(words.len(), 9);
        assert_eq!(words[8].keep, 1);
    }

    #[test]
    fn empty_packet_produces_no_words() {
        assert!(segment(&[], BusWidth::W64).is_empty());
    }

    #[test]
    fn exact_multiple_has_full_final_beat() {
        let words = segment(&[0u8; 128], BusWidth::W64);
        assert_eq!(words.len(), 16);
        assert_eq!(words[15].keep, 8);
        assert!(words[15].eof);
        assert!(!words[14].eof);
    }

    #[test]
    fn prototype_sustains_10g_at_min_frames() {
        // The §5.1 claim: 64 b @ 156.25 MHz is "sufficient for line-rate".
        let cfg = DatapathConfig::prototype_10g();
        assert!(cfg.sustains_line_rate(10_000_000_000, 64));
        assert!(cfg.sustains_line_rate(10_000_000_000, 1518));
    }

    #[test]
    fn prototype_cannot_sustain_20g() {
        let cfg = DatapathConfig::prototype_10g();
        assert!(!cfg.sustains_line_rate(20_000_000_000, 64));
        // ...but a doubled clock can (the Two-Way-Core mitigation).
        let fast = DatapathConfig {
            width: BusWidth::W64,
            clock: ClockDomain::XGMII_10G_X2,
        };
        assert!(fast.sustains_line_rate(20_000_000_000, 64));
    }

    #[test]
    fn w512_reaches_100g() {
        let cfg = DatapathConfig {
            width: BusWidth::W512,
            clock: ClockDomain::from_mhz(250.0),
        };
        assert!(cfg.bandwidth_bps() >= 100_000_000_000);
        assert!(cfg.sustains_line_rate(100_000_000_000, 64));
    }

    #[test]
    fn w512_reassemble_reserves_exact_capacity() {
        // A 1518 B frame on the 512-bit bus: 24 beats of 64 B. The old
        // `beats × 8` hint reserved 192 B for a 1518 B packet and grew
        // mid-copy; the width-derived hint must cover the frame without
        // reallocation (capacity within one beat of the final length).
        let pkt: Vec<u8> = (0..1518u32).map(|i| i as u8).collect();
        let words = segment(&pkt, BusWidth::W512);
        assert_eq!(words.len(), 24);
        let out = reassemble(&words);
        assert_eq!(out, pkt);
        assert!(out.capacity() >= out.len());
        assert!(out.capacity() <= out.len() + BusWidth::W512.bytes());
        // Single-beat packets derive the width from keep alone and stay
        // exact too.
        let small = reassemble(&segment(&pkt[..40], BusWidth::W512));
        assert_eq!(small.len(), 40);
        assert!(small.capacity() >= 40);
    }

    #[test]
    fn max_pps_for_min_frames() {
        let cfg = DatapathConfig::prototype_10g();
        // 8 beats per 64B frame -> 156.25e6/8 = 19.53 Mpps bus limit,
        // comfortably above the 14.88 Mpps 10G line-rate arrival.
        assert!((cfg.max_pps(64) - 19_531_250.0).abs() < 1.0);
    }

    #[test]
    fn effective_bps_accounts_for_padding() {
        let cfg = DatapathConfig::prototype_10g();
        // 65-byte packets need 9 beats; efficiency = 65/72.
        let eff = cfg.effective_bps(65);
        let expected = 10_000_000_000.0 * 65.0 / 72.0;
        assert!((eff - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn width_properties() {
        assert_eq!(BusWidth::W64.bytes(), 8);
        assert_eq!(BusWidth::W512.bytes(), 64);
        assert_eq!(BusWidth::all().len(), 4);
    }
}
