//! Bounded FIFOs with occupancy statistics.
//!
//! Every clock-domain or rate boundary in the module (interface → PPE,
//! the Two-Way-Core aggregator, the control-plane injection path) buffers
//! through a FIFO whose depth is a real hardware resource. The model
//! tracks high-water marks and overflow drops so experiments can report
//! where loss occurs when a shell is overdriven.

/// A bounded FIFO over items of type `T`.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: std::collections::VecDeque<T>,
    capacity: usize,
    stats: FifoStats,
}

/// Occupancy and loss statistics of a [`Fifo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoStats {
    /// Total successful pushes.
    pub pushed: u64,
    /// Total pops.
    pub popped: u64,
    /// Pushes rejected because the FIFO was full.
    pub overflows: u64,
    /// Maximum occupancy ever observed.
    pub high_water: usize,
}

impl<T> Fifo<T> {
    /// A FIFO holding up to `capacity` items. Panics on zero capacity.
    pub fn new(capacity: usize) -> Fifo<T> {
        assert!(capacity > 0, "FIFO capacity must be non-zero");
        Fifo {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            stats: FifoStats::default(),
        }
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when full (the next push would drop).
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Push an item; on overflow the item is returned in `Err` and
    /// counted as a drop.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.stats.overflows += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.stats.pushed += 1;
        self.stats.high_water = self.stats.high_water.max(self.items.len());
        Ok(())
    }

    /// Pop the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.stats.popped += 1;
        }
        item
    }

    /// Peek at the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> FifoStats {
        self.stats
    }

    /// Drop all contents (items are lost, not counted as overflows).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_preserved() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn overflow_returns_item_and_counts() {
        let mut f = Fifo::new(2);
        f.push("a").unwrap();
        f.push("b").unwrap();
        assert_eq!(f.push("c"), Err("c"));
        assert_eq!(f.stats().overflows, 1);
        assert_eq!(f.stats().pushed, 2);
        assert!(f.is_full());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        for _ in 0..5 {
            f.pop();
        }
        f.push(9).unwrap();
        assert_eq!(f.stats().high_water, 5);
        assert_eq!(f.stats().popped, 5);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = Fifo::new(2);
        f.push(7).unwrap();
        assert_eq!(f.peek(), Some(&7));
        assert_eq!(f.len(), 1);
        assert_eq!(f.pop(), Some(7));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new(0);
    }
}
