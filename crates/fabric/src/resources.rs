//! FPGA resource accounting: 4-input LUTs, flip-flops, uSRAM and LSRAM
//! blocks, logic-element normalization and device fit checking.
//!
//! This module is the arithmetic engine behind the paper's Table 1
//! (per-component resource usage of the NAT case study on the MPF200T)
//! and Table 2 (normalizing published designs to 4-input logic-element
//! equivalents to judge whether they could fit a FlexSFP).

use std::ops::{Add, AddAssign};

/// Resource usage of one design component, in PolarFire units:
/// 4-input LUTs, flip-flops, uSRAM blocks (64×12 b each) and LSRAM blocks
/// (20 kb each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResourceManifest {
    /// 4-input look-up tables.
    pub lut4: u64,
    /// D flip-flops.
    pub ff: u64,
    /// uSRAM blocks (64 words × 12 bits = 768 b each).
    pub usram: u64,
    /// LSRAM blocks (20 kb each).
    pub lsram: u64,
}

// The manifest travels inside the bitstream container's JSON header, so
// it needs the in-tree codec (the impl must live here, next to the type).
flexsfp_obs::impl_json_struct!(ResourceManifest {
    lut4,
    ff,
    usram,
    lsram
});

/// Bits held by one uSRAM block (64 × 12 b).
pub const USRAM_BLOCK_BITS: u64 = 64 * 12;
/// Bits held by one LSRAM block (20 kb).
pub const LSRAM_BLOCK_BITS: u64 = 20 * 1024;

impl ResourceManifest {
    /// A zero manifest.
    pub const ZERO: ResourceManifest = ResourceManifest {
        lut4: 0,
        ff: 0,
        usram: 0,
        lsram: 0,
    };

    /// Construct from explicit counts.
    pub const fn new(lut4: u64, ff: u64, usram: u64, lsram: u64) -> Self {
        ResourceManifest {
            lut4,
            ff,
            usram,
            lsram,
        }
    }

    /// Total on-chip SRAM bits this manifest consumes.
    pub fn sram_bits(&self) -> u64 {
        self.usram * USRAM_BLOCK_BITS + self.lsram * LSRAM_BLOCK_BITS
    }

    /// Scale every resource by an integer factor (e.g. per-stage cost ×
    /// number of stages).
    pub fn scaled(&self, factor: u64) -> ResourceManifest {
        ResourceManifest {
            lut4: self.lut4 * factor,
            ff: self.ff * factor,
            usram: self.usram * factor,
            lsram: self.lsram * factor,
        }
    }

    /// True if every resource of `self` fits within `other`.
    pub fn fits_within(&self, other: &ResourceManifest) -> bool {
        self.lut4 <= other.lut4
            && self.ff <= other.ff
            && self.usram <= other.usram
            && self.lsram <= other.lsram
    }
}

impl Add for ResourceManifest {
    type Output = ResourceManifest;
    fn add(self, rhs: ResourceManifest) -> ResourceManifest {
        ResourceManifest {
            lut4: self.lut4 + rhs.lut4,
            ff: self.ff + rhs.ff,
            usram: self.usram + rhs.usram,
            lsram: self.lsram + rhs.lsram,
        }
    }
}

impl AddAssign for ResourceManifest {
    fn add_assign(&mut self, rhs: ResourceManifest) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for ResourceManifest {
    fn sum<I: Iterator<Item = ResourceManifest>>(iter: I) -> ResourceManifest {
        iter.fold(ResourceManifest::ZERO, |a, b| a + b)
    }
}

/// An FPGA device with its resource capacities.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Device {
    /// Marketing/device name.
    pub name: String,
    /// Capacity in the same units as [`ResourceManifest`].
    pub capacity: ResourceManifest,
    /// Vendor logic-element equivalent of the whole device, used for
    /// cross-vendor comparisons (Table 2).
    pub logic_elements: u64,
    /// Total on-chip block RAM in kilobits as marketed.
    pub bram_kbits: u64,
    /// Highest practical fabric clock for compact pipelines, Hz.
    pub max_fabric_hz: u64,
    /// Process node in nanometres (the prototype device is 28 nm).
    pub process_nm: u32,
}

impl Device {
    /// The paper's prototype FPGA: PolarFire MPF200T-FCSG325.
    ///
    /// Capacities match Table 1's "Avail." row: 192 408 4LUT and FF,
    /// 1 764 uSRAM blocks, 616 LSRAM blocks; marketed as ~192 k LE with
    /// 13.3 Mb of SRAM.
    pub fn mpf200t() -> Device {
        Device {
            name: "MPF200T-FCSG325".into(),
            capacity: ResourceManifest::new(192_408, 192_408, 1_764, 616),
            logic_elements: 192_000,
            bram_kbits: 13_300,
            max_fabric_hz: 400_000_000,
            process_nm: 28,
        }
    }

    /// A larger hypothetical device for §5.3 scaling studies (≈ 500 k LE
    /// class, e.g. an MPF500T-like part).
    pub fn mpf500t_class() -> Device {
        Device {
            name: "MPF500T-class".into(),
            capacity: ResourceManifest::new(481_000, 481_000, 4_440, 1_520),
            logic_elements: 481_000,
            bram_kbits: 33_000,
            max_fabric_hz: 500_000_000,
            process_nm: 28,
        }
    }

    /// Check whether `used` fits this device and produce a report.
    pub fn fit(&self, used: ResourceManifest) -> FitReport {
        FitReport {
            device: self.name.clone(),
            used,
            available: self.capacity,
        }
    }
}

/// Result of checking a design against a device, with the percentage
/// utilizations the paper reports in Table 1.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FitReport {
    /// Device name.
    pub device: String,
    /// Summed usage of the design.
    pub used: ResourceManifest,
    /// Device capacity.
    pub available: ResourceManifest,
}

impl FitReport {
    /// True if the design fits the device in every resource class.
    pub fn fits(&self) -> bool {
        self.used.fits_within(&self.available)
    }

    /// Percentage utilization (rounded to nearest integer) of each
    /// resource class: `(lut4, ff, usram, lsram)`.
    pub fn utilization_pct(&self) -> (u32, u32, u32, u32) {
        fn pct(used: u64, avail: u64) -> u32 {
            if avail == 0 {
                return 0;
            }
            ((used as f64 / avail as f64) * 100.0).round() as u32
        }
        (
            pct(self.used.lut4, self.available.lut4),
            pct(self.used.ff, self.available.ff),
            pct(self.used.usram, self.available.usram),
            pct(self.used.lsram, self.available.lsram),
        )
    }

    /// The most utilized resource class as `(name, pct)` — the scaling
    /// bottleneck.
    pub fn bottleneck(&self) -> (&'static str, u32) {
        let (l, f, u, s) = self.utilization_pct();
        let mut best = ("4LUT", l);
        for cand in [("FF", f), ("uSRAM", u), ("LSRAM", s)] {
            if cand.1 > best.1 {
                best = cand;
            }
        }
        best
    }

    /// Headroom remaining in each class (saturating).
    pub fn headroom(&self) -> ResourceManifest {
        ResourceManifest {
            lut4: self.available.lut4.saturating_sub(self.used.lut4),
            ff: self.available.ff.saturating_sub(self.used.ff),
            usram: self.available.usram.saturating_sub(self.used.usram),
            lsram: self.available.lsram.saturating_sub(self.used.lsram),
        }
    }
}

/// Normalization factors between vendor logic units and 4-input logic
/// elements, as used by Table 2.
pub mod normalize {
    /// One Xilinx 6-input LUT ≈ 1.6 four-input logic elements.
    pub const LUT6_TO_LE: f64 = 1.6;
    /// One Intel ALM ≈ 2.0 four-input logic elements.
    pub const ALM_TO_LE: f64 = 2.0;

    /// Convert a LUT6 count to LE equivalents.
    pub fn lut6_to_le(lut6: u64) -> u64 {
        (lut6 as f64 * LUT6_TO_LE).round() as u64
    }

    /// Convert an ALM count to LE equivalents.
    pub fn alm_to_le(alm: u64) -> u64 {
        (alm as f64 * ALM_TO_LE).round() as u64
    }
}

/// Calibrated per-component manifests from the paper's Table 1 synthesis
/// report of the NAT case study.
pub mod table1 {
    use super::ResourceManifest;

    /// Mi-V RISC-V softcore control plane.
    pub const MI_V: ResourceManifest = ResourceManifest::new(8_696, 376, 6, 4);
    /// 10G Ethernet IP core for the electrical (edge) interface.
    pub const ELECTRICAL_IF: ResourceManifest = ResourceManifest::new(6_824, 6_924, 118, 0);
    /// 10G Ethernet IP core for the optical interface.
    pub const OPTICAL_IF: ResourceManifest = ResourceManifest::new(6_813, 6_924, 118, 0);
    /// The NAT application (Packet Processing Engine instance).
    pub const NAT_APP: ResourceManifest = ResourceManifest::new(9_122, 11_294, 36, 160);

    /// The paper's "Used" row (sum of the four components).
    pub const USED: ResourceManifest = ResourceManifest::new(31_455, 25_518, 278, 164);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_components_sum_to_used_row() {
        let sum = table1::MI_V + table1::ELECTRICAL_IF + table1::OPTICAL_IF + table1::NAT_APP;
        assert_eq!(sum, table1::USED);
    }

    #[test]
    fn table1_fits_mpf200t_with_paper_percentages() {
        let dev = Device::mpf200t();
        let report = dev.fit(table1::USED);
        assert!(report.fits());
        // Table 1 reports 16% / 13% / 15% / 26%.
        assert_eq!(report.utilization_pct(), (16, 13, 16, 27));
    }

    #[test]
    fn table1_percentages_match_paper_rounding() {
        // The paper floors its percentages; verify the exact ratios land
        // in the right integer band either way.
        let dev = Device::mpf200t();
        let r = dev.fit(table1::USED);
        let lut = r.used.lut4 as f64 / r.available.lut4 as f64 * 100.0;
        let ff = r.used.ff as f64 / r.available.ff as f64 * 100.0;
        let us = r.used.usram as f64 / r.available.usram as f64 * 100.0;
        let ls = r.used.lsram as f64 / r.available.lsram as f64 * 100.0;
        assert!((16.0..17.0).contains(&lut), "lut {lut}");
        assert!((13.0..14.0).contains(&ff), "ff {ff}");
        assert!((15.0..16.0).contains(&us), "usram {us}");
        assert!((26.0..27.0).contains(&ls), "lsram {ls}");
    }

    #[test]
    fn usram_lsram_bit_capacity_matches_paper_footnote() {
        // Table 1 notes ≈20 kb of uSRAM used (278 blocks) and ≈4 Mb of
        // LSRAM used (164 blocks) — within rounding of block arithmetic.
        let usram_kb = table1::USED.usram * USRAM_BLOCK_BITS / 1000;
        assert!((200..=230).contains(&usram_kb), "uSRAM ~{usram_kb} kbit");
        let lsram_mb = table1::USED.lsram * LSRAM_BLOCK_BITS / 1024;
        assert!(
            (3_000..=4_200).contains(&lsram_mb),
            "LSRAM ~{lsram_mb} kbit"
        );
    }

    #[test]
    fn manifest_arithmetic() {
        let a = ResourceManifest::new(1, 2, 3, 4);
        let b = ResourceManifest::new(10, 20, 30, 40);
        assert_eq!(a + b, ResourceManifest::new(11, 22, 33, 44));
        assert_eq!(a.scaled(3), ResourceManifest::new(3, 6, 9, 12));
        assert!(a.fits_within(&b));
        assert!(!b.fits_within(&a));
        let sum: ResourceManifest = [a, b, a].into_iter().sum();
        assert_eq!(sum, ResourceManifest::new(12, 24, 36, 48));
    }

    #[test]
    fn sram_bits_accounting() {
        let m = ResourceManifest::new(0, 0, 2, 3);
        assert_eq!(m.sram_bits(), 2 * 768 + 3 * 20 * 1024);
    }

    #[test]
    fn fit_report_bottleneck_and_headroom() {
        let dev = Device::mpf200t();
        let r = dev.fit(table1::USED);
        // LSRAM is the most utilized class for the NAT design.
        assert_eq!(r.bottleneck().0, "LSRAM");
        let head = r.headroom();
        assert_eq!(head.lut4, 192_408 - 31_455);
        assert_eq!(head.lsram, 616 - 164);
    }

    #[test]
    fn overflow_design_does_not_fit() {
        let dev = Device::mpf200t();
        let r = dev.fit(ResourceManifest::new(200_000, 0, 0, 0));
        assert!(!r.fits());
        assert_eq!(r.headroom().lut4, 0);
    }

    #[test]
    fn normalization_factors() {
        assert_eq!(normalize::lut6_to_le(71_712), 114_739); // FlowBlaze ≈115k LE
        assert_eq!(normalize::alm_to_le(207_960), 415_920); // Pigasus ≈416k LE
        assert_eq!(normalize::lut6_to_le(0), 0);
    }

    #[test]
    fn mpf200t_marketed_numbers() {
        let d = Device::mpf200t();
        assert_eq!(d.logic_elements, 192_000);
        assert_eq!(d.bram_kbits, 13_300);
        assert_eq!(d.process_nm, 28);
    }
}
