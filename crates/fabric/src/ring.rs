//! Bounded single-producer/single-consumer rings.
//!
//! The sharded dataplane moves packets from the dispatcher core to the
//! per-shard worker cores over exactly this structure: a fixed-capacity
//! ring, one writer, one reader, no shared locks on the hot path. The
//! workspace forbids `unsafe`, so instead of the classic
//! raw-slot/`UnsafeCell` construction the ring pairs monotone atomic
//! head/tail counters with one `Mutex<Option<T>>` per slot. The
//! counters alone decide who may touch a slot — the producer writes
//! slot `tail` only while `tail - head < capacity`, the consumer reads
//! slot `head` only while `head < tail` — so every slot lock is
//! uncontended by construction and compiles to an unconteded
//! atomic exchange; the SPSC protocol itself stays wait-free.
//!
//! Ends are typed: [`channel`] returns a [`Producer`]/[`Consumer`]
//! pair, neither clonable, both `Send`, so the single-producer/
//! single-consumer discipline is enforced at compile time rather than
//! asked for in a comment.
//!
//! # Batched operation and cached positions
//!
//! Each end keeps a private copy of its *own* monotone position (the
//! producer owns `tail`, the consumer owns `head` — nobody else writes
//! them) and a *cached* snapshot of the opposite end's position. The
//! cache is refreshed with an `Acquire` load only when the ring looks
//! full (producer) or empty (consumer), so in steady state a whole
//! batch of operations costs one atomic refresh plus one `Release`
//! publish instead of two atomic loads and one store per item.
//! [`Producer::push_slice`] and [`Consumer::pop_chunk`] take this to
//! its conclusion: move up to a whole slice of items across the ring
//! under a single position publish each.
//!
//! Backpressure is explicit and accounted: a full ring rejects the
//! push (handing items back), and counts the rejection
//! ([`Producer::rejected`]) so a dispatcher can report how often it
//! stalled on each shard.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shared state behind one ring: the slot array and the monotone
/// position counters. `head`/`tail` count *items*, not slots — the slot
/// index is `position % capacity` — so full (`tail - head == capacity`)
/// and empty (`tail == head`) are unambiguous without a wasted slot.
struct Shared<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Next position to pop; owned by the consumer, read by the producer.
    head: AtomicUsize,
    /// Next position to push; owned by the producer, read by the consumer.
    tail: AtomicUsize,
    /// Push attempts refused because the ring was full.
    rejected: AtomicUsize,
    /// Set when the producer end is dropped.
    closed: AtomicBool,
}

/// Create a bounded SPSC ring holding up to `capacity` items.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be nonzero");
    let shared = Arc::new(Shared {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        rejected: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            shared,
            head: 0,
            tail_cache: 0,
        },
    )
}

/// The write end of a ring. Not clonable: exactly one producer exists.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Private copy of the shared `tail` (this end is its only writer).
    tail: usize,
    /// Last observed consumer `head`; refreshed (Acquire) only when the
    /// ring looks full, so steady-state pushes skip the atomic load.
    head_cache: usize,
}

impl<T> Producer<T> {
    /// Slots free by the cached view, refreshing the cache from the
    /// consumer's published `head` only when the cached view says full.
    /// The cache is conservative: it can only under-report free space,
    /// never over-report, so the SPSC safety argument is unchanged.
    fn free_slots(&mut self, want: usize) -> usize {
        let cap = self.shared.slots.len();
        let mut free = cap - self.tail.wrapping_sub(self.head_cache);
        if free < want {
            // Acquire pairs with the consumer's Release store of
            // `head`: once we observe a slot as vacated, the
            // consumer's `take` of the old value has happened-before
            // our write.
            self.head_cache = self.shared.head.load(Ordering::Acquire);
            free = cap - self.tail.wrapping_sub(self.head_cache);
        }
        free
    }

    /// Try to enqueue `item`. On a full ring the item is handed back
    /// unchanged and the rejection is counted — the caller decides
    /// whether to spin, yield, or drop.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.free_slots(1) == 0 {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(item);
        }
        let s = &*self.shared;
        *s.slots[self.tail % s.slots.len()]
            .lock()
            .expect("ring slot lock") = Some(item);
        self.tail = self.tail.wrapping_add(1);
        // Release publishes the slot write to the consumer's Acquire
        // load of `tail`.
        s.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Batch push: move as many items as fit from the *front* of
    /// `items` into the ring, preserving order, under a single
    /// position publish. Returns the number moved; the remainder stays
    /// in `items` (front-aligned) for the caller to retry. A call that
    /// cannot move every offered item counts one rejection event.
    pub fn push_slice(&mut self, items: &mut Vec<T>) -> usize {
        if items.is_empty() {
            return 0;
        }
        let n = self.free_slots(items.len()).min(items.len());
        if n < items.len() {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            if n == 0 {
                return 0;
            }
        }
        let s = &*self.shared;
        let cap = s.slots.len();
        for (i, item) in items.drain(..n).enumerate() {
            *s.slots[self.tail.wrapping_add(i) % cap]
                .lock()
                .expect("ring slot lock") = Some(item);
        }
        self.tail = self.tail.wrapping_add(n);
        s.tail.store(self.tail, Ordering::Release);
        n
    }

    /// Items successfully pushed since creation.
    pub fn pushed(&self) -> usize {
        self.shared.tail.load(Ordering::Relaxed)
    }

    /// Push attempts refused because the ring was full (backpressure
    /// events; a partial [`push_slice`](Self::push_slice) counts one).
    pub fn rejected(&self) -> usize {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(s.head.load(Ordering::Acquire))
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // Release orders every prior push before the closed flag, so a
        // consumer that observes `closed` and then drains sees all of
        // them.
        self.shared.closed.store(true, Ordering::Release);
    }
}

/// The read end of a ring. Not clonable: exactly one consumer exists.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Private copy of the shared `head` (this end is its only writer).
    head: usize,
    /// Last observed producer `tail`; refreshed (Acquire) only when the
    /// ring looks empty, so steady-state pops skip the atomic load.
    tail_cache: usize,
}

impl<T> Consumer<T> {
    /// Items available by the cached view, refreshing from the
    /// producer's published `tail` only when the cache says empty.
    fn available(&mut self) -> usize {
        let mut avail = self.tail_cache.wrapping_sub(self.head);
        if avail == 0 {
            // Acquire pairs with the producer's Release store of `tail`.
            self.tail_cache = self.shared.tail.load(Ordering::Acquire);
            avail = self.tail_cache.wrapping_sub(self.head);
        }
        avail
    }

    /// Try to dequeue the oldest item; `None` when the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.available() == 0 {
            return None;
        }
        let s = &*self.shared;
        let item = s.slots[self.head % s.slots.len()]
            .lock()
            .expect("ring slot lock")
            .take();
        self.head = self.head.wrapping_add(1);
        // Release hands the vacated slot back to the producer.
        s.head.store(self.head, Ordering::Release);
        item
    }

    /// Batch pop: append up to `max` queued items to `out`, preserving
    /// order, under a single position publish. Returns the number
    /// appended (0 when the ring is empty).
    pub fn pop_chunk(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let n = self.available().min(max);
        if n == 0 {
            return 0;
        }
        let s = &*self.shared;
        let cap = s.slots.len();
        out.reserve(n);
        for i in 0..n {
            let item = s.slots[self.head.wrapping_add(i) % cap]
                .lock()
                .expect("ring slot lock")
                .take()
                .expect("counters said occupied");
            out.push(item);
        }
        self.head = self.head.wrapping_add(n);
        s.head.store(self.head, Ordering::Release);
        n
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Acquire)
            .wrapping_sub(s.head.load(Ordering::Relaxed))
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items successfully popped since creation.
    pub fn popped(&self) -> usize {
        self.shared.head.load(Ordering::Relaxed)
    }

    /// True once the producer end has been dropped. The ring may still
    /// hold items; drain until [`try_pop`](Self::try_pop) returns
    /// `None` *after* observing this.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Slot capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_pops_none() {
        let (_p, mut c) = channel::<u32>(4);
        assert!(c.is_empty());
        assert_eq!(c.try_pop(), None);
        assert_eq!(c.popped(), 0);
    }

    #[test]
    fn full_ring_rejects_and_accounts() {
        let (mut p, mut c) = channel(2);
        assert_eq!(p.try_push(1u32), Ok(()));
        assert_eq!(p.try_push(2), Ok(()));
        // Full: the item comes back and the rejection is counted.
        assert_eq!(p.try_push(3), Err(3));
        assert_eq!(p.try_push(4), Err(4));
        assert_eq!(p.rejected(), 2);
        assert_eq!(p.pushed(), 2);
        assert_eq!(p.len(), 2);
        // Draining one slot re-admits exactly one push.
        assert_eq!(c.try_pop(), Some(1));
        assert_eq!(p.try_push(3), Ok(()));
        assert_eq!(p.try_push(5), Err(5));
        assert_eq!(p.rejected(), 3);
    }

    #[test]
    fn wraparound_preserves_fifo_order() {
        let (mut p, mut c) = channel(3);
        let mut next = 0u64;
        let mut expect = 0u64;
        // 10 laps over a 3-slot ring: every slot index is reused in
        // both phases of the position counters.
        for _ in 0..10 {
            while p.try_push(next).is_ok() {
                next += 1;
            }
            while let Some(v) = c.try_pop() {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        assert_eq!(expect, next);
        assert_eq!(p.pushed(), c.popped());
        assert!(c.is_empty());
    }

    #[test]
    fn close_is_visible_after_drop() {
        let (p, mut c) = channel::<u8>(2);
        assert!(!c.is_closed());
        drop(p);
        assert!(c.is_closed());
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn non_copy_items_move_through() {
        let (mut p, mut c) = channel(2);
        p.try_push(String::from("alpha")).unwrap();
        p.try_push(String::from("beta")).unwrap();
        assert_eq!(c.try_pop().as_deref(), Some("alpha"));
        assert_eq!(c.try_pop().as_deref(), Some("beta"));
    }

    #[test]
    fn push_slice_moves_front_and_keeps_remainder() {
        let (mut p, mut c) = channel::<u32>(3);
        let mut items = vec![10, 11, 12, 13, 14];
        // Only 3 fit; the remainder stays front-aligned and the
        // shortfall counts one rejection event.
        assert_eq!(p.push_slice(&mut items), 3);
        assert_eq!(items, vec![13, 14]);
        assert_eq!(p.rejected(), 1);
        // Completely full: nothing moves, one more rejection.
        assert_eq!(p.push_slice(&mut items), 0);
        assert_eq!(items, vec![13, 14]);
        assert_eq!(p.rejected(), 2);
        // FIFO order is the slice order.
        let mut out = Vec::new();
        assert_eq!(c.pop_chunk(&mut out, 64), 3);
        assert_eq!(out, vec![10, 11, 12]);
        // Remainder fits now; empty-slice pushes are free no-ops.
        assert_eq!(p.push_slice(&mut items), 2);
        assert_eq!(p.push_slice(&mut items), 0);
        assert_eq!(p.rejected(), 2);
    }

    #[test]
    fn pop_chunk_respects_max_and_appends() {
        let (mut p, mut c) = channel::<u32>(8);
        let mut items: Vec<u32> = (0..6).collect();
        assert_eq!(p.push_slice(&mut items), 6);
        let mut out = vec![99];
        assert_eq!(c.pop_chunk(&mut out, 4), 4);
        assert_eq!(out, vec![99, 0, 1, 2, 3]);
        assert_eq!(c.pop_chunk(&mut out, 4), 2);
        assert_eq!(out, vec![99, 0, 1, 2, 3, 4, 5]);
        assert_eq!(c.pop_chunk(&mut out, 4), 0);
        assert_eq!(c.popped(), 6);
    }

    #[test]
    fn batch_ops_wrap_around_the_slot_array() {
        let (mut p, mut c) = channel::<u64>(5);
        let mut next = 0u64;
        let mut expect = 0u64;
        let mut out = Vec::new();
        // Uneven batch sizes against a 5-slot ring: every lap crosses
        // the wrap point at a different offset.
        for lap in 0..40 {
            let mut batch: Vec<u64> = (next..next + 3 + (lap % 3)).collect();
            let pushed = p.push_slice(&mut batch) as u64;
            next += pushed;
            c.pop_chunk(&mut out, 2 + (lap as usize % 4));
            for v in out.drain(..) {
                assert_eq!(v, expect, "reordered across wrap");
                expect += 1;
            }
        }
        while c.pop_chunk(&mut out, 64) > 0 {
            for v in out.drain(..) {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        assert_eq!(expect, next);
        assert_eq!(p.pushed(), c.popped());
    }

    #[test]
    fn mixed_item_and_batch_ops_interleave_in_order() {
        let (mut p, mut c) = channel::<u32>(4);
        p.try_push(0).unwrap();
        let mut batch = vec![1, 2];
        assert_eq!(p.push_slice(&mut batch), 2);
        assert_eq!(c.try_pop(), Some(0));
        let mut out = Vec::new();
        assert_eq!(c.pop_chunk(&mut out, 8), 2);
        assert_eq!(out, vec![1, 2]);
    }

    /// Two-thread stress: 10^6 items with seeded (reproducible) pacing
    /// jitter on both ends must arrive complete and in order, with
    /// pushes + rejections exactly accounting for every attempt.
    #[test]
    fn spsc_stress_no_loss_no_reorder() {
        use flexsfp_traffic::rng::Xoshiro256;

        const ITEMS: u64 = 1_000_000;
        let (mut p, mut c) = channel::<u64>(64);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(0x51);
                let mut v = 0u64;
                while v < ITEMS {
                    match p.try_push(v) {
                        Ok(()) => v += 1,
                        Err(_) => std::thread::yield_now(),
                    }
                    // Seeded jitter: occasionally stall the producer so
                    // the consumer sees empty rings mid-run too.
                    if rng.next_u64().is_multiple_of(4096) {
                        std::thread::yield_now();
                    }
                }
            });
            let mut rng = Xoshiro256::seed_from_u64(0xbeef);
            let mut expect = 0u64;
            while expect < ITEMS {
                match c.try_pop() {
                    Some(v) => {
                        assert_eq!(v, expect, "reordered or lost item");
                        expect += 1;
                    }
                    None => std::thread::yield_now(),
                }
                if rng.next_u64().is_multiple_of(4096) {
                    std::thread::yield_now();
                }
            }
            assert_eq!(c.try_pop(), None);
            assert_eq!(c.popped(), ITEMS as usize);
        });
    }

    /// Batched two-thread stress: the producer moves items in seeded
    /// variable-size slices, the consumer drains in seeded variable-size
    /// chunks; everything arrives complete and in order.
    #[test]
    fn spsc_batch_stress_no_loss_no_reorder() {
        use flexsfp_traffic::rng::Xoshiro256;

        const ITEMS: u64 = 1_000_000;
        let (mut p, mut c) = channel::<u64>(64);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(0xa11);
                let mut staged: Vec<u64> = Vec::new();
                let mut next = 0u64;
                while next < ITEMS || !staged.is_empty() {
                    while staged.len() < (1 + rng.next_u64() % 48) as usize && next < ITEMS {
                        staged.push(next);
                        next += 1;
                    }
                    if p.push_slice(&mut staged) == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            let mut rng = Xoshiro256::seed_from_u64(0xb22);
            let mut out: Vec<u64> = Vec::new();
            let mut expect = 0u64;
            while expect < ITEMS {
                let max = (1 + rng.next_u64() % 96) as usize;
                if c.pop_chunk(&mut out, max) == 0 {
                    std::thread::yield_now();
                }
                for v in out.drain(..) {
                    assert_eq!(v, expect, "reordered or lost item");
                    expect += 1;
                }
            }
            assert_eq!(c.try_pop(), None);
            assert_eq!(c.popped(), ITEMS as usize);
        });
    }
}
