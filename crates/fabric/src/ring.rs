//! Bounded single-producer/single-consumer rings.
//!
//! The sharded dataplane moves packets from the dispatcher core to the
//! per-shard worker cores over exactly this structure: a fixed-capacity
//! ring, one writer, one reader, no shared locks on the hot path. The
//! workspace forbids `unsafe`, so instead of the classic
//! raw-slot/`UnsafeCell` construction the ring pairs monotone atomic
//! head/tail counters with one `Mutex<Option<T>>` per slot. The
//! counters alone decide who may touch a slot — the producer writes
//! slot `tail` only while `tail - head < capacity`, the consumer reads
//! slot `head` only while `head < tail` — so every slot lock is
//! uncontended by construction and compiles to an unconteded
//! atomic exchange; the SPSC protocol itself stays wait-free.
//!
//! Ends are typed: [`channel`] returns a [`Producer`]/[`Consumer`]
//! pair, neither clonable, both `Send`, so the single-producer/
//! single-consumer discipline is enforced at compile time rather than
//! asked for in a comment.
//!
//! Backpressure is explicit and accounted: a full ring rejects the
//! push, hands the item back, and counts the rejection
//! ([`Producer::rejected`]) so a dispatcher can report how often it
//! stalled on each shard.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shared state behind one ring: the slot array and the monotone
/// position counters. `head`/`tail` count *items*, not slots — the slot
/// index is `position % capacity` — so full (`tail - head == capacity`)
/// and empty (`tail == head`) are unambiguous without a wasted slot.
struct Shared<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Next position to pop; owned by the consumer, read by the producer.
    head: AtomicUsize,
    /// Next position to push; owned by the producer, read by the consumer.
    tail: AtomicUsize,
    /// Pushes refused because the ring was full.
    rejected: AtomicUsize,
    /// Set when the producer end is dropped.
    closed: AtomicBool,
}

/// Create a bounded SPSC ring holding up to `capacity` items.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be nonzero");
    let shared = Arc::new(Shared {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        rejected: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

/// The write end of a ring. Not clonable: exactly one producer exists.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The read end of a ring. Not clonable: exactly one consumer exists.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Producer<T> {
    /// Try to enqueue `item`. On a full ring the item is handed back
    /// unchanged and the rejection is counted — the caller decides
    /// whether to spin, yield, or drop.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        let s = &*self.shared;
        let tail = s.tail.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's Release store of `head`:
        // once we observe the slot as vacated, the consumer's `take`
        // of the old value has happened-before our write.
        let head = s.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == s.slots.len() {
            s.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(item);
        }
        *s.slots[tail % s.slots.len()]
            .lock()
            .expect("ring slot lock") = Some(item);
        // Release publishes the slot write to the consumer's Acquire
        // load of `tail`.
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items successfully pushed since creation.
    pub fn pushed(&self) -> usize {
        self.shared.tail.load(Ordering::Relaxed)
    }

    /// Pushes refused because the ring was full (backpressure events).
    pub fn rejected(&self) -> usize {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(s.head.load(Ordering::Acquire))
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // Release orders every prior push before the closed flag, so a
        // consumer that observes `closed` and then drains sees all of
        // them.
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Try to dequeue the oldest item; `None` when the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        // Acquire pairs with the producer's Release store of `tail`.
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let item = s.slots[head % s.slots.len()]
            .lock()
            .expect("ring slot lock")
            .take();
        // Release hands the vacated slot back to the producer.
        s.head.store(head.wrapping_add(1), Ordering::Release);
        item
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Acquire)
            .wrapping_sub(s.head.load(Ordering::Relaxed))
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items successfully popped since creation.
    pub fn popped(&self) -> usize {
        self.shared.head.load(Ordering::Relaxed)
    }

    /// True once the producer end has been dropped. The ring may still
    /// hold items; drain until [`try_pop`](Self::try_pop) returns
    /// `None` *after* observing this.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Slot capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_pops_none() {
        let (_p, mut c) = channel::<u32>(4);
        assert!(c.is_empty());
        assert_eq!(c.try_pop(), None);
        assert_eq!(c.popped(), 0);
    }

    #[test]
    fn full_ring_rejects_and_accounts() {
        let (mut p, mut c) = channel(2);
        assert_eq!(p.try_push(1u32), Ok(()));
        assert_eq!(p.try_push(2), Ok(()));
        // Full: the item comes back and the rejection is counted.
        assert_eq!(p.try_push(3), Err(3));
        assert_eq!(p.try_push(4), Err(4));
        assert_eq!(p.rejected(), 2);
        assert_eq!(p.pushed(), 2);
        assert_eq!(p.len(), 2);
        // Draining one slot re-admits exactly one push.
        assert_eq!(c.try_pop(), Some(1));
        assert_eq!(p.try_push(3), Ok(()));
        assert_eq!(p.try_push(5), Err(5));
        assert_eq!(p.rejected(), 3);
    }

    #[test]
    fn wraparound_preserves_fifo_order() {
        let (mut p, mut c) = channel(3);
        let mut next = 0u64;
        let mut expect = 0u64;
        // 10 laps over a 3-slot ring: every slot index is reused in
        // both phases of the position counters.
        for _ in 0..10 {
            while p.try_push(next).is_ok() {
                next += 1;
            }
            while let Some(v) = c.try_pop() {
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        assert_eq!(expect, next);
        assert_eq!(p.pushed(), c.popped());
        assert!(c.is_empty());
    }

    #[test]
    fn close_is_visible_after_drop() {
        let (p, mut c) = channel::<u8>(2);
        assert!(!c.is_closed());
        drop(p);
        assert!(c.is_closed());
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn non_copy_items_move_through() {
        let (mut p, mut c) = channel(2);
        p.try_push(String::from("alpha")).unwrap();
        p.try_push(String::from("beta")).unwrap();
        assert_eq!(c.try_pop().as_deref(), Some("alpha"));
        assert_eq!(c.try_pop().as_deref(), Some("beta"));
    }

    /// Two-thread stress: 10^6 items with seeded (reproducible) pacing
    /// jitter on both ends must arrive complete and in order, with
    /// pushes + rejections exactly accounting for every attempt.
    #[test]
    fn spsc_stress_no_loss_no_reorder() {
        use flexsfp_traffic::rng::Xoshiro256;

        const ITEMS: u64 = 1_000_000;
        let (mut p, mut c) = channel::<u64>(64);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut rng = Xoshiro256::seed_from_u64(0x51);
                let mut v = 0u64;
                while v < ITEMS {
                    match p.try_push(v) {
                        Ok(()) => v += 1,
                        Err(_) => std::thread::yield_now(),
                    }
                    // Seeded jitter: occasionally stall the producer so
                    // the consumer sees empty rings mid-run too.
                    if rng.next_u64().is_multiple_of(4096) {
                        std::thread::yield_now();
                    }
                }
            });
            let mut rng = Xoshiro256::seed_from_u64(0xbeef);
            let mut expect = 0u64;
            while expect < ITEMS {
                match c.try_pop() {
                    Some(v) => {
                        assert_eq!(v, expect, "reordered or lost item");
                        expect += 1;
                    }
                    None => std::thread::yield_now(),
                }
                if rng.next_u64().is_multiple_of(4096) {
                    std::thread::yield_now();
                }
            }
            assert_eq!(c.try_pop(), None);
            assert_eq!(c.popped(), ITEMS as usize);
        });
    }
}
