//! # flexsfp-fabric
//!
//! Models of the FPGA fabric and board-level substrate a FlexSFP module is
//! built from. The paper's prototype pairs a Microchip PolarFire MPF200T
//! with a 128 Mb SPI flash, two 12.7 Gb/s transceivers, a JTAG port and the
//! standard SFP I2C management interface; this crate reproduces each of
//! those as a deterministic software model:
//!
//! * [`resources`] — 4LUT/FF/uSRAM/LSRAM accounting, device capacities and
//!   the fit checker behind the paper's Table 1 and Table 2;
//! * [`clock`] — clock domains and cycle/time conversion;
//! * [`stream`] — the word-oriented streaming datapath (64-bit @
//!   156.25 MHz in the prototype) and its throughput arithmetic;
//! * [`fifo`] — bounded FIFOs with occupancy and overflow statistics;
//! * [`sram`] — uSRAM/LSRAM block allocation (64×12 b and 20 kb blocks);
//! * [`hash`] — the hardware hash primitives (CRC-32 and Toeplitz);
//! * [`ring`] — bounded SPSC rings, the shard-fabric packet conduits;
//! * [`serdes`] — transceiver + 64b/66b PCS model and line-rate math;
//! * [`xbar`] — the crosspoint-queued crossbar matrix behind the
//!   rack-scale fabric (per-(input,output) bounded FIFOs, round-robin
//!   output arbitration);
//! * [`flash`] — the slotted SPI flash storing multiple bitstreams;
//! * [`jtag`] — the prototyping-phase programming path;
//! * [`i2c`] — SFF-8472 digital optical monitoring registers;
//! * [`power`] — the calibrated power model behind the §5 measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fifo;
pub mod flash;
pub mod hash;
pub mod i2c;
pub mod jtag;
pub mod power;
pub mod resources;
pub mod ring;
pub mod serdes;
pub mod sram;
pub mod stream;
pub mod xbar;

pub use clock::ClockDomain;
pub use fifo::Fifo;
pub use flash::SpiFlash;
pub use power::PowerModel;
pub use resources::{Device, FitReport, ResourceManifest};
pub use serdes::Transceiver;
pub use stream::{BusWord, DatapathConfig};
pub use xbar::{CrosspointMatrix, XbarTotals};
