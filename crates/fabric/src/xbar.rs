//! The crosspoint-queued crossbar matrix (FlexCross-style).
//!
//! A classic input-queued switch suffers head-of-line blocking: one
//! congested output stalls every frame behind it in the input FIFO. The
//! crosspoint-queued (CQ) organisation — one small bounded FIFO per
//! (input, output) pair — removes that coupling entirely: input *i* can
//! keep sending to output *b* while its queue toward output *a* is full,
//! and each output arbitrates round-robin over its own column of
//! crosspoints, independent of every other output.
//!
//! This module is the geometry and arbitration only; it is generic over
//! the queued item so the host layer can queue timestamped frames while
//! unit tests queue integers. Buffering reuses [`crate::fifo::Fifo`],
//! so per-crosspoint occupancy, high-water and overflow statistics come
//! for free and flow into the `flexsfp_xbar_*` telemetry family.

use crate::fifo::{Fifo, FifoStats};

/// Aggregate counters across the whole matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XbarTotals {
    /// Items accepted into some crosspoint queue.
    pub enqueued: u64,
    /// Items rejected because their crosspoint queue was full.
    pub dropped: u64,
    /// Items granted (popped) by output arbitration.
    pub granted: u64,
    /// Deepest occupancy any single crosspoint ever reached.
    pub high_water: usize,
}

/// An N×N matrix of bounded crosspoint queues with per-output
/// round-robin arbitration.
#[derive(Debug, Clone)]
pub struct CrosspointMatrix<T> {
    ports: usize,
    /// Row-major: the queue from `input` to `output` lives at
    /// `input * ports + output`.
    queues: Vec<Fifo<T>>,
    /// Per-output round-robin pointer: the next input examined first.
    rr_next: Vec<usize>,
    /// Per-output grant counters.
    grants: Vec<u64>,
}

impl<T> CrosspointMatrix<T> {
    /// An N×N matrix with `depth` slots per crosspoint. Panics when
    /// `ports` or `depth` is zero.
    pub fn new(ports: usize, depth: usize) -> CrosspointMatrix<T> {
        assert!(ports > 0, "crossbar needs at least one port");
        CrosspointMatrix {
            ports,
            queues: (0..ports * ports).map(|_| Fifo::new(depth)).collect(),
            rr_next: vec![0; ports],
            grants: vec![0; ports],
        }
    }

    /// Port count (the matrix is square).
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Slots per crosspoint queue.
    pub fn depth(&self) -> usize {
        self.queues[0].capacity()
    }

    #[inline]
    fn idx(&self, input: usize, output: usize) -> usize {
        debug_assert!(input < self.ports && output < self.ports);
        input * self.ports + output
    }

    /// Offer an item to the (input, output) crosspoint. On overflow the
    /// item comes back in `Err` and the crosspoint counts the drop.
    pub fn offer(&mut self, input: usize, output: usize, item: T) -> Result<(), T> {
        let i = self.idx(input, output);
        self.queues[i].push(item)
    }

    /// Grant one item toward `output`: round-robin over the output's
    /// column starting after the last granted input. Returns the
    /// granted input and the item, or `None` when the column is empty.
    pub fn arbitrate(&mut self, output: usize) -> Option<(usize, T)> {
        let start = self.rr_next[output];
        for step in 0..self.ports {
            let input = (start + step) % self.ports;
            let i = self.idx(input, output);
            if let Some(item) = self.queues[i].pop() {
                self.rr_next[output] = (input + 1) % self.ports;
                self.grants[output] += 1;
                return Some((input, item));
            }
        }
        None
    }

    /// Items queued toward `output` across all inputs.
    pub fn column_len(&self, output: usize) -> usize {
        (0..self.ports)
            .map(|input| self.queues[self.idx(input, output)].len())
            .sum()
    }

    /// Items queued anywhere in the matrix.
    pub fn occupancy(&self) -> usize {
        self.queues.iter().map(Fifo::len).sum()
    }

    /// True when no crosspoint holds an item.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(Fifo::is_empty)
    }

    /// Lifetime statistics of one crosspoint queue.
    pub fn crosspoint_stats(&self, input: usize, output: usize) -> FifoStats {
        self.queues[self.idx(input, output)].stats()
    }

    /// Lifetime grants issued by `output`'s arbiter.
    pub fn grants(&self, output: usize) -> u64 {
        self.grants[output]
    }

    /// Aggregate counters across every crosspoint.
    pub fn totals(&self) -> XbarTotals {
        let mut t = XbarTotals::default();
        for q in &self.queues {
            let s = q.stats();
            t.enqueued += s.pushed;
            t.dropped += s.overflows;
            t.high_water = t.high_water.max(s.high_water);
        }
        t.granted = self.grants.iter().sum();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair_across_inputs() {
        let mut m: CrosspointMatrix<usize> = CrosspointMatrix::new(4, 8);
        // Inputs 0, 1, 2 each queue four items toward output 3.
        for input in 0..3 {
            for k in 0..4 {
                m.offer(input, 3, input * 10 + k).unwrap();
            }
        }
        // Grants must interleave 0, 1, 2, 0, 1, 2, … — not drain one
        // input before touching the next.
        let order: Vec<usize> = (0..12).map(|_| m.arbitrate(3).unwrap().0).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(m.grants(3), 12);
        assert!(m.is_empty());
    }

    #[test]
    fn rr_pointer_starts_after_last_grant() {
        let mut m: CrosspointMatrix<u8> = CrosspointMatrix::new(3, 4);
        m.offer(2, 0, b'c').unwrap();
        assert_eq!(m.arbitrate(0), Some((2, b'c')));
        // Pointer wrapped past input 2; a lone item from input 2 is
        // still found after scanning 0 and 1.
        m.offer(2, 0, b'd').unwrap();
        assert_eq!(m.arbitrate(0), Some((2, b'd')));
        assert_eq!(m.arbitrate(0), None);
    }

    #[test]
    fn full_crosspoint_does_not_block_other_outputs() {
        let mut m: CrosspointMatrix<u32> = CrosspointMatrix::new(2, 1);
        // Input 0 → output 0 is full…
        m.offer(0, 0, 1).unwrap();
        assert!(m.offer(0, 0, 2).is_err());
        // …but input 0 → output 1 still accepts: no HOL coupling.
        m.offer(0, 1, 3).unwrap();
        assert_eq!(m.arbitrate(1), Some((0, 3)));
        assert_eq!(m.crosspoint_stats(0, 0).overflows, 1);
        assert_eq!(m.crosspoint_stats(0, 1).overflows, 0);
    }

    #[test]
    fn totals_aggregate_per_crosspoint_counters() {
        let mut m: CrosspointMatrix<u32> = CrosspointMatrix::new(2, 2);
        for k in 0..3 {
            let _ = m.offer(0, 1, k); // third push overflows
        }
        m.offer(1, 0, 9).unwrap();
        m.arbitrate(1).unwrap();
        let t = m.totals();
        assert_eq!(t.enqueued, 3);
        assert_eq!(t.dropped, 1);
        assert_eq!(t.granted, 1);
        assert_eq!(t.high_water, 2);
        assert_eq!(m.occupancy(), 2);
        assert_eq!(m.column_len(1), 1);
        assert_eq!(m.column_len(0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        let _ = CrosspointMatrix::<u8>::new(0, 4);
    }
}
