//! On-chip SRAM block allocation.
//!
//! PolarFire fabric offers two embedded memory types with very different
//! shapes: uSRAM blocks of 64 words × 12 bits (768 b, distributed, ideal
//! for small register files) and LSRAM blocks of 20 kb (ideal for tables).
//! Table 1's footnote explains the NAT's 160-LSRAM-block footprint by its
//! 32 768-entry flow table; [`MemoryPlanner`] reproduces that placement
//! arithmetic so any application's table set can be mapped to blocks.

use crate::resources::{ResourceManifest, LSRAM_BLOCK_BITS, USRAM_BLOCK_BITS};

/// The two embedded memory types of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemoryKind {
    /// 64×12 b distributed blocks.
    Usram,
    /// 20 kb block RAM.
    Lsram,
}

/// A memory requirement: some number of words of some width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TableShape {
    /// Number of addressable entries.
    pub entries: u64,
    /// Width of each entry in bits.
    pub entry_bits: u64,
}

impl TableShape {
    /// Construct a shape.
    pub const fn new(entries: u64, entry_bits: u64) -> TableShape {
        TableShape {
            entries,
            entry_bits,
        }
    }

    /// Total bits stored.
    pub fn total_bits(&self) -> u64 {
        self.entries * self.entry_bits
    }
}

/// Placement decision for one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Placement {
    /// Chosen memory kind.
    pub kind: MemoryKind,
    /// Blocks consumed.
    pub blocks: u64,
}

/// Plans table placements onto uSRAM/LSRAM blocks.
///
/// Policy (matching vendor synthesis behaviour closely enough for the
/// paper's numbers): tables of ≤ 64 entries and ≤ 12 b width go to uSRAM;
/// everything else goes to LSRAM. LSRAM blocks are 1k × 20 b natively; a
/// wider entry consumes `ceil(entry_bits / 20)` block columns and
/// `ceil(entries / 1024)` block rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryPlanner;

/// Native LSRAM organisation: 1024 words × 20 bits.
pub const LSRAM_WORDS: u64 = 1024;
/// Native LSRAM word width in bits.
pub const LSRAM_WIDTH: u64 = 20;
/// Native uSRAM organisation: 64 words × 12 bits.
pub const USRAM_WORDS: u64 = 64;
/// Native uSRAM word width in bits.
pub const USRAM_WIDTH: u64 = 12;

impl MemoryPlanner {
    /// Decide a placement for `shape`.
    pub fn place(shape: TableShape) -> Placement {
        if shape.entries <= USRAM_WORDS && shape.entry_bits <= USRAM_WIDTH {
            return Placement {
                kind: MemoryKind::Usram,
                blocks: 1,
            };
        }
        // Small-but-wide or shallow register files still prefer uSRAM if
        // they fit in a handful of blocks more economically than a 20 kb
        // LSRAM would.
        let usram_blocks =
            shape.entries.div_ceil(USRAM_WORDS) * shape.entry_bits.div_ceil(USRAM_WIDTH);
        let lsram_blocks =
            shape.entries.div_ceil(LSRAM_WORDS) * shape.entry_bits.div_ceil(LSRAM_WIDTH);
        if usram_blocks * USRAM_BLOCK_BITS <= lsram_blocks * LSRAM_BLOCK_BITS / 4 {
            Placement {
                kind: MemoryKind::Usram,
                blocks: usram_blocks,
            }
        } else {
            Placement {
                kind: MemoryKind::Lsram,
                blocks: lsram_blocks,
            }
        }
    }

    /// Plan a set of tables, returning the summed memory manifest.
    pub fn plan(shapes: &[TableShape]) -> ResourceManifest {
        let mut m = ResourceManifest::ZERO;
        for s in shapes {
            let p = Self::place(*s);
            match p.kind {
                MemoryKind::Usram => m.usram += p.blocks,
                MemoryKind::Lsram => m.lsram += p.blocks,
            }
        }
        m
    }
}

/// A behavioural single-cycle-read SRAM holding `words` of `width_bits`
/// (values stored as u64, masked to width). Models the dataplane's table
/// memories; read latency is handled by the pipeline model, not here.
#[derive(Debug, Clone)]
pub struct Sram {
    words: Vec<u64>,
    width_bits: u64,
    reads: u64,
    writes: u64,
}

impl Sram {
    /// Allocate an SRAM of `words` entries, each `width_bits` wide
    /// (≤ 64 in the behavioural model).
    pub fn new(words: usize, width_bits: u64) -> Sram {
        assert!(width_bits > 0 && width_bits <= 64);
        Sram {
            words: vec![0; words],
            width_bits,
            reads: 0,
            writes: 0,
        }
    }

    fn mask(&self) -> u64 {
        if self.width_bits == 64 {
            u64::MAX
        } else {
            (1 << self.width_bits) - 1
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the SRAM has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read word `addr`; out-of-range reads return `None`.
    pub fn read(&mut self, addr: usize) -> Option<u64> {
        self.reads += 1;
        self.words.get(addr).copied()
    }

    /// Write word `addr`; the value is masked to the word width.
    /// Out-of-range writes return `false`.
    pub fn write(&mut self, addr: usize, value: u64) -> bool {
        self.writes += 1;
        let mask = self.mask();
        match self.words.get_mut(addr) {
            Some(w) => {
                *w = value & mask;
                true
            }
            None => false,
        }
    }

    /// `(reads, writes)` access counters — feed the dynamic power model.
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_table_goes_to_usram() {
        let p = MemoryPlanner::place(TableShape::new(64, 12));
        assert_eq!(p.kind, MemoryKind::Usram);
        assert_eq!(p.blocks, 1);
    }

    #[test]
    fn nat_flow_table_needs_lsram() {
        // 32 768 entries × ~96 b (IPv4 key + translated address + valid
        // bit + padding) — the Table 1 footnote's reason for LSRAM usage.
        let p = MemoryPlanner::place(TableShape::new(32_768, 96));
        assert_eq!(p.kind, MemoryKind::Lsram);
        // 32 rows of 1k × 5 columns of 20b = 160 blocks — exactly the
        // Table 1 NAT LSRAM count.
        assert_eq!(p.blocks, 160);
    }

    #[test]
    fn plan_sums_mixed_tables() {
        let m = MemoryPlanner::plan(&[TableShape::new(64, 12), TableShape::new(32_768, 96)]);
        assert_eq!(m.usram, 1);
        assert_eq!(m.lsram, 160);
        assert_eq!(m.lut4, 0);
    }

    #[test]
    fn shallow_table_prefers_usram_mosaic() {
        // 100 entries of 40 bits: 2 rows × 4 columns of uSRAM = 8 blocks
        // (6 kb) beats burning a 20 kb LSRAM column pair.
        let p = MemoryPlanner::place(TableShape::new(100, 40));
        assert_eq!(p.kind, MemoryKind::Usram);
        assert_eq!(p.blocks, 8);
    }

    #[test]
    fn deep_table_block_math() {
        // 2048 entries of 40 bits: 2 rows × 2 columns = 4 LSRAM blocks.
        let p = MemoryPlanner::place(TableShape::new(2048, 40));
        assert_eq!(p.kind, MemoryKind::Lsram);
        assert_eq!(p.blocks, 4);
    }

    #[test]
    fn shape_total_bits() {
        assert_eq!(TableShape::new(1024, 20).total_bits(), 20 * 1024);
    }

    #[test]
    fn sram_read_write_mask() {
        let mut s = Sram::new(16, 12);
        assert!(s.write(3, 0xfff0));
        assert_eq!(s.read(3), Some(0xff0));
        assert_eq!(s.read(99), None);
        assert!(!s.write(99, 1));
        assert_eq!(s.access_counts(), (2, 2));
        assert_eq!(s.len(), 16);
    }

    #[test]
    fn sram_full_width() {
        let mut s = Sram::new(2, 64);
        s.write(0, u64::MAX);
        assert_eq!(s.read(0), Some(u64::MAX));
    }
}
