//! Hardware hash primitives.
//!
//! The dataplane hashes for two reasons: flow-table bucket indexing (the
//! NAT's 32 k-entry source-IP table) and flow steering (the Katran-like
//! load-balancing use case). FPGAs implement these as CRC-32 trees and
//! Toeplitz matrices; both are bit-exact reproduced here so table layouts
//! are stable across the whole workspace.

/// Per-byte CRC-32 lookup table (reflected 0xEDB88320) — the classic
/// byte-parallel formulation a synthesized CRC circuit unrolls into.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial, reflected), byte-parallel — one table
/// step per byte, exactly the unrolled XOR tree a hardware CRC uses.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[usize::from((crc as u8) ^ b)];
    }
    !crc
}

/// The Microsoft RSS default Toeplitz key, the de-facto standard for
/// NIC flow steering.
pub const RSS_DEFAULT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Toeplitz hash of `input` under `key` (must be at least
/// `input.len() + 4` bytes long).
pub fn toeplitz(key: &[u8], input: &[u8]) -> u32 {
    assert!(
        key.len() >= input.len() + 4,
        "Toeplitz key too short for input"
    );
    let mut result: u32 = 0;
    // The sliding 32-bit window over the key.
    let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    let mut next_key_bit_index = 32usize;
    for &byte in input {
        for bit in (0..8).rev() {
            if byte & (1 << bit) != 0 {
                result ^= window;
            }
            // Shift the window left by one, pulling in the next key bit.
            let next_bit = if next_key_bit_index / 8 < key.len() {
                (key[next_key_bit_index / 8] >> (7 - (next_key_bit_index % 8))) & 1
            } else {
                0
            };
            window = (window << 1) | u32::from(next_bit);
            next_key_bit_index += 1;
        }
    }
    result
}

/// Toeplitz hash of an IPv4 2-tuple (src, dst) in RSS field order.
pub fn toeplitz_v4_2tuple(key: &[u8], src: u32, dst: u32) -> u32 {
    let mut input = [0u8; 8];
    input[0..4].copy_from_slice(&src.to_be_bytes());
    input[4..8].copy_from_slice(&dst.to_be_bytes());
    toeplitz(key, &input)
}

/// Toeplitz hash of an IPv4 4-tuple (src, dst, sport, dport) in RSS
/// field order.
pub fn toeplitz_v4_4tuple(key: &[u8], src: u32, dst: u32, sport: u16, dport: u16) -> u32 {
    let mut input = [0u8; 12];
    input[0..4].copy_from_slice(&src.to_be_bytes());
    input[4..8].copy_from_slice(&dst.to_be_bytes());
    input[8..10].copy_from_slice(&sport.to_be_bytes());
    input[10..12].copy_from_slice(&dport.to_be_bytes());
    toeplitz(key, &input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical "123456789" check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn toeplitz_rss_published_vectors() {
        // Verification suite from the Microsoft RSS specification:
        // 66.9.149.187:2794 -> 161.142.100.80:1766  => 0x51ccc178
        let src = u32::from_be_bytes([66, 9, 149, 187]);
        let dst = u32::from_be_bytes([161, 142, 100, 80]);
        let h = toeplitz_v4_4tuple(&RSS_DEFAULT_KEY, src, dst, 2794, 1766);
        assert_eq!(h, 0x51cc_c178);
        // 2-tuple variant: 66.9.149.187 -> 161.142.100.80 => 0x323e8fc2
        let h2 = toeplitz_v4_2tuple(&RSS_DEFAULT_KEY, src, dst);
        assert_eq!(h2, 0x323e_8fc2);
    }

    #[test]
    fn toeplitz_more_rss_vectors() {
        // 199.92.111.2:14230 -> 65.69.140.83:4739 => 0xc626b0ea
        let src = u32::from_be_bytes([199, 92, 111, 2]);
        let dst = u32::from_be_bytes([65, 69, 140, 83]);
        assert_eq!(
            toeplitz_v4_4tuple(&RSS_DEFAULT_KEY, src, dst, 14230, 4739),
            0xc626_b0ea
        );
        assert_eq!(toeplitz_v4_2tuple(&RSS_DEFAULT_KEY, src, dst), 0xd718_262a);
    }

    #[test]
    fn hash_distributes_buckets() {
        // Sanity: over 4k sequential addresses, all 16 buckets of a
        // CRC-indexed table get used.
        let mut seen = [false; 16];
        for i in 0u32..4096 {
            let h = crc32(&i.to_be_bytes());
            seen[(h & 0xf) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "key too short")]
    fn short_key_panics() {
        toeplitz(&[0u8; 8], &[0u8; 8]);
    }
}
