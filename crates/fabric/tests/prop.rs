#![cfg(feature = "proptest")]
// Needs the proptest dev-dependency; see "Building" in the README.
//! Property tests for fabric substrate invariants.

use flexsfp_fabric::fifo::Fifo;
use flexsfp_fabric::flash::{SpiFlash, FLASH_BYTES, SECTOR_BYTES};
use flexsfp_fabric::resources::ResourceManifest;
use flexsfp_fabric::sram::{MemoryPlanner, TableShape};
use flexsfp_fabric::stream::{reassemble, segment, BusWidth, DatapathConfig};
use flexsfp_fabric::ClockDomain;
use proptest::prelude::*;

proptest! {
    /// FIFO preserves order and never exceeds capacity; pushes+overflows
    /// account for every offer.
    #[test]
    fn fifo_order_and_accounting(
        capacity in 1usize..64,
        ops in proptest::collection::vec(any::<Option<u16>>(), 0..200),
    ) {
        let mut f = Fifo::new(capacity);
        let mut model = std::collections::VecDeque::new();
        let mut offered = 0u64;
        for op in ops {
            match op {
                Some(v) => {
                    offered += 1;
                    if f.push(v).is_ok() {
                        model.push_back(v);
                    }
                    prop_assert!(f.len() <= capacity);
                }
                None => {
                    prop_assert_eq!(f.pop(), model.pop_front());
                }
            }
        }
        let stats = f.stats();
        prop_assert_eq!(stats.pushed + stats.overflows, offered);
        prop_assert_eq!(f.len(), model.len());
        // Drain fully in order.
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(f.pop(), Some(expect));
        }
        prop_assert!(f.is_empty());
    }

    /// Segment → reassemble is the identity for every width.
    #[test]
    fn stream_round_trip(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
        width_idx in 0usize..4,
    ) {
        let width = BusWidth::all()[width_idx];
        let words = segment(&data, width);
        prop_assert_eq!(reassemble(&words), data.clone());
        if !data.is_empty() {
            prop_assert_eq!(words.len(), data.len().div_ceil(width.bytes()));
            prop_assert!(words[0].sof);
            prop_assert!(words.last().unwrap().eof);
            // All non-final beats are full.
            for w in &words[..words.len() - 1] {
                prop_assert_eq!(w.keep as usize, width.bytes());
            }
        }
    }

    /// Occupancy cycles are monotone in packet length and inversely
    /// monotone in width.
    #[test]
    fn occupancy_monotonicity(len in 1usize..3000) {
        let clock = ClockDomain::XGMII_10G;
        let mut prev = u64::MAX;
        for width in BusWidth::all() {
            let cfg = DatapathConfig { width, clock };
            let beats = cfg.occupancy_cycles(len);
            prop_assert!(beats <= prev);
            prev = beats;
            prop_assert_eq!(cfg.occupancy_cycles(len + 1) >= beats, true);
        }
    }

    /// Flash: program-after-erase round-trips arbitrary data at
    /// arbitrary sector-aligned locations.
    #[test]
    fn flash_round_trip(
        sector in 0usize..16,
        data in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let mut flash = SpiFlash::new();
        let addr = sector * SECTOR_BYTES;
        prop_assume!(addr + data.len() <= FLASH_BYTES);
        flash.erase_sector(addr).unwrap();
        flash.program(addr, &data).unwrap();
        prop_assert_eq!(flash.read(addr, data.len()).unwrap(), &data[..]);
        // Reprogramming without erase fails unless only clearing bits.
        let inverted: Vec<u8> = data.iter().map(|b| !b).collect();
        if data.iter().any(|&b| b != 0xff) {
            prop_assert!(flash.program(addr, &inverted).is_err());
        }
    }

    /// Resource manifest addition is commutative/associative and `sum`
    /// agrees with folding.
    #[test]
    fn manifest_algebra(
        a in any::<[u16; 4]>(),
        b in any::<[u16; 4]>(),
        c in any::<[u16; 4]>(),
    ) {
        let m = |x: [u16; 4]| ResourceManifest::new(x[0].into(), x[1].into(), x[2].into(), x[3].into());
        let (a, b, c) = (m(a), m(b), m(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        let sum: ResourceManifest = [a, b, c].into_iter().sum();
        prop_assert_eq!(sum, a + b + c);
        // fits_within is reflexive and monotone under addition.
        prop_assert!(a.fits_within(&(a + b)));
    }

    /// Memory planner: allocated bits always cover the requested bits.
    #[test]
    fn planner_never_underallocates(
        entries in 1u64..100_000,
        bits in 1u64..256,
    ) {
        let shape = TableShape::new(entries, bits);
        let placement = MemoryPlanner::place(shape);
        let allocated = match placement.kind {
            flexsfp_fabric::sram::MemoryKind::Usram => placement.blocks * 768,
            flexsfp_fabric::sram::MemoryKind::Lsram => placement.blocks * 20 * 1024,
        };
        prop_assert!(allocated >= shape.total_bits(),
            "{entries}x{bits}: allocated {allocated} < needed {}", shape.total_bits());
    }

    /// Power is monotone in utilization, activity and clock.
    #[test]
    fn power_monotonicity(
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
        act in 0.0f64..1.0,
    ) {
        let model = flexsfp_fabric::PowerModel::flexsfp_prototype();
        let design = flexsfp_fabric::resources::table1::USED;
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let p_lo = model.power(&design, ClockDomain::XGMII_10G, 2, lo, act).total_w();
        let p_hi = model.power(&design, ClockDomain::XGMII_10G, 2, hi, act).total_w();
        prop_assert!(p_lo <= p_hi + 1e-12);
        let f1 = model.power(&design, ClockDomain::XGMII_10G, 2, lo, act).fabric_dynamic_w;
        let f2 = model.power(&design, ClockDomain::XGMII_10G_X2, 2, lo, act).fabric_dynamic_w;
        prop_assert!(f2 >= f1);
    }
}
