#![cfg(feature = "proptest")]
// Needs the proptest dev-dependency; see "Building" in the README.
//! Property tests for the observability primitives: the histogram's
//! relative-error bound, merge-equals-concatenation, and event-ring
//! loss accounting.

use flexsfp_obs::{DataplaneEvent, EventKind, EventRing, LatencyHistogram, WindowedSeries};
use proptest::prelude::*;

/// The exact sample quantile using the same rank rule as the
/// histogram: the `ceil(q·n)`-th smallest sample, clamped to `[1, n]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let target = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(target - 1) as usize]
}

/// Allowed absolute error at a given exact value: 1 % relative, with a
/// ±1 floor for the integer rounding of tiny values.
fn tolerance(exact: u64) -> f64 {
    (exact as f64 * 0.01).max(1.0)
}

proptest! {
    /// For arbitrary u64 samples, every quantile estimate is within
    /// 1 % relative error of the exact sample quantile computed with
    /// the same rank rule.
    #[test]
    fn quantile_relative_error_bound(
        mut samples in prop::collection::vec(any::<u64>(), 1..500),
        quantiles in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in quantiles {
            let exact = exact_quantile(&samples, q);
            let approx = h.value_at_quantile(q);
            let err = approx.abs_diff(exact) as f64;
            prop_assert!(
                err <= tolerance(exact),
                "q={} exact={} approx={} err={}", q, exact, approx, err
            );
        }
    }

    /// merge(a, b) produces quantiles equal (within bound) to the
    /// quantiles of the concatenated sample stream — in fact the
    /// merged histogram is bit-identical to one fed both streams.
    #[test]
    fn merge_quantiles_equal_concat(
        xs in prop::collection::vec(0u64..1_000_000, 0..300),
        ys in prop::collection::vec(0u64..1_000_000, 0..300),
    ) {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut concat = LatencyHistogram::new();
        for &x in &xs {
            a.record(x);
            concat.record(x);
        }
        for &y in &ys {
            b.record(y);
            concat.record(y);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &concat);

        let mut all: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        if !all.is_empty() {
            all.sort_unstable();
            for q in [0.5, 0.9, 0.99, 0.999] {
                let exact = exact_quantile(&all, q);
                let approx = a.value_at_quantile(q);
                let err = approx.abs_diff(exact) as f64;
                prop_assert!(
                    err <= tolerance(exact),
                    "q={} exact={} approx={}", q, exact, approx
                );
            }
        }
    }

    /// Exact min/max/count survive any merge order.
    #[test]
    fn merge_preserves_exact_extrema(
        xs in prop::collection::vec(any::<u64>(), 1..100),
        ys in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for &x in &xs { a.record(x); }
        for &y in &ys { b.record(y); }
        a.merge(&b);
        let true_min = xs.iter().chain(ys.iter()).copied().min().unwrap();
        let true_max = xs.iter().chain(ys.iter()).copied().max().unwrap();
        prop_assert_eq!(a.min(), true_min);
        prop_assert_eq!(a.max(), true_max);
        prop_assert_eq!(a.count(), (xs.len() + ys.len()) as u64);
    }

    /// The event ring never loses events silently: across any sequence
    /// of pushes and drains, pushed == drained + overwritten + buffered.
    #[test]
    fn event_ring_conserves_events(
        capacity in 1usize..32,
        ops in prop::collection::vec(prop::bool::ANY, 0..400),
    ) {
        let mut ring = EventRing::new(capacity);
        let mut pushed = 0u64;
        let mut collected = 0u64;
        for (t, op) in ops.into_iter().enumerate() {
            if op {
                ring.push(DataplaneEvent {
                    timestamp_ns: t as u64,
                    kind: EventKind::AuthReject,
                });
                pushed += 1;
            } else {
                collected += ring.drain().len() as u64;
            }
        }
        prop_assert_eq!(ring.drained(), collected);
        prop_assert_eq!(
            pushed,
            ring.drained() + ring.overwritten() + ring.len() as u64
        );
    }

    /// Merging every rotated window histogram (the evicted catch-all
    /// plus the live ring) is bit-identical to a lifetime histogram fed
    /// the same latency stream — rotation never loses or double-counts
    /// a sample, whatever the width, capacity and timestamp pattern.
    #[test]
    fn window_rotation_conserves_histogram(
        width in 1u64..5_000,
        capacity in 1usize..16,
        samples in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000), 0..400),
    ) {
        let mut series = WindowedSeries::new(width, capacity);
        let mut lifetime = LatencyHistogram::new();
        for &(ts, lat) in &samples {
            series.record_forwarded(ts, lat as f64);
            lifetime.record_f64(lat as f64);
        }
        let merged = series.lifetime();
        prop_assert_eq!(&merged.latency, &lifetime);
        prop_assert_eq!(merged.forwarded, samples.len() as u64);
        prop_assert!(series.windows().len() <= capacity);
    }

    /// Counter conservation across rotation boundaries: forwarded,
    /// drop and cache counters summed over evicted + live windows equal
    /// exactly what was recorded, for any interleaving of record kinds
    /// (including out-of-order and ancient timestamps).
    #[test]
    fn window_rotation_conserves_counters(
        width in 1u64..2_000,
        capacity in 1usize..8,
        ops in prop::collection::vec((0u64..200_000, 0u8..4, 0u64..10, 0u64..10), 0..300),
    ) {
        let mut series = WindowedSeries::new(width, capacity);
        let (mut fwd, mut app, mut unexplained, mut hits, mut misses, mut evictions) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for &(ts, kind, h, m) in &ops {
            match kind {
                0 => { series.record_forwarded(ts, ts as f64); fwd += 1; }
                1 => { series.record_drop(ts, false); app += 1; }
                2 => { series.record_drop(ts, true); unexplained += 1; }
                _ => {
                    // Derive an eviction delta and occupancy gauge from the
                    // same drawn values so they exercise the new fields.
                    series.record_cache(ts, h, m, h % 3, h + m);
                    hits += h; misses += m;
                    if h != 0 || m != 0 || h % 3 != 0 { evictions += h % 3; }
                }
            }
        }
        let total = series.lifetime();
        prop_assert_eq!(total.forwarded, fwd);
        prop_assert_eq!(total.drops_app, app);
        prop_assert_eq!(total.drops_unexplained, unexplained);
        prop_assert_eq!(total.cache_hits, hits);
        prop_assert_eq!(total.cache_misses, misses);
        prop_assert_eq!(total.cache_evictions, evictions);
        prop_assert_eq!(total.latency.count(), fwd);
        // The JSON wire format carries the whole series losslessly.
        use flexsfp_obs::{FromJson, ToJson, Value};
        let back = WindowedSeries::from_json(
            &Value::parse(&series.to_json().to_string()).unwrap()
        ).unwrap();
        prop_assert_eq!(back, series);
    }
}
