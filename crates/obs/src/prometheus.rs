//! Prometheus text-exposition rendering.
//!
//! A minimal builder for the text format scraped by Prometheus
//! (`# HELP` / `# TYPE` headers followed by `name{labels} value`
//! samples). Only the subset the fleet collector needs — counters,
//! gauges and summaries — no client-library dependency.

/// Builder for a Prometheus text-exposition document.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline must be escaped.
fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            c => s.push(c),
        }
    }
    s
}

/// Format a sample value: integers render without a decimal point,
/// everything else with enough digits to round-trip.
fn format_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl PromText {
    /// An empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emit `# HELP` and `# TYPE` headers for a metric family.
    /// `kind` is one of `counter`, `gauge`, `summary`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) -> &mut PromText {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
        self
    }

    /// Emit one sample line with the given `(key, value)` labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut PromText {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
        self
    }

    /// Finish the document and return the text.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Borrow the text rendered so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_samples() {
        let mut p = PromText::new();
        p.header("flexsfp_rx_frames_total", "Frames received", "counter");
        p.sample("flexsfp_rx_frames_total", &[("module", "0")], 42.0);
        p.sample("flexsfp_rx_frames_total", &[("module", "1")], 7.0);
        let text = p.into_string();
        assert!(text.contains("# HELP flexsfp_rx_frames_total Frames received\n"));
        assert!(text.contains("# TYPE flexsfp_rx_frames_total counter\n"));
        assert!(text.contains("flexsfp_rx_frames_total{module=\"0\"} 42\n"));
        assert!(text.contains("flexsfp_rx_frames_total{module=\"1\"} 7\n"));
    }

    #[test]
    fn bare_sample_has_no_braces() {
        let mut p = PromText::new();
        p.sample("up", &[], 1.0);
        assert_eq!(p.as_str(), "up 1\n");
    }

    #[test]
    fn escapes_label_values() {
        let mut p = PromText::new();
        p.sample("m", &[("app", "a\"b\\c\nd")], 1.0);
        assert_eq!(p.as_str(), "m{app=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn formats_integers_and_floats() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(-12.0), "-12");
        assert_eq!(format_value(0.5), "0.5");
        assert_eq!(format_value(314.159), "314.159");
    }

    #[test]
    fn multiple_labels_render_comma_separated() {
        let mut p = PromText::new();
        p.sample("lat", &[("module", "2"), ("quantile", "0.99")], 312.0);
        assert_eq!(p.as_str(), "lat{module=\"2\",quantile=\"0.99\"} 312\n");
    }
}
