//! Flight recorder: INT-style per-packet postcards.
//!
//! A deterministic 1-in-N sampler (the sampler itself lives in
//! `flexsfp-core`, next to the packet loop) stamps sampled packets with
//! a postcard — per-stage cycle timestamps, queue depth at arrival,
//! flow-cache hit/miss and the final verdict — and accumulates them in
//! a bounded [`FlightRing`] the host drains out-of-band, mirroring
//! in-band network telemetry postcards. [`chrome_trace`] renders a
//! batch of records as chrome://tracing trace-event JSON so a run can
//! be opened directly in Perfetto.

use crate::events::DropReason;
use crate::json::{FromJson, ToJson, Value};
use std::collections::VecDeque;

/// Default flight-ring capacity; sampled postcards are bigger than
/// trace events, so the ring matches [`crate::events::DEFAULT_RING_CAPACITY`]
/// rather than exceeding it.
pub const DEFAULT_FLIGHT_RING_CAPACITY: usize = 256;

/// Cycle-resolution timestamps for one match-action stage of one
/// sampled packet, relative to pipeline entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StageStamp {
    /// Stage index in the pipeline.
    pub stage: u8,
    /// Whether the stage's table lookup hit.
    pub hit: bool,
    /// Cycle (from pipeline entry) the stage began.
    pub start_cycle: u32,
    /// Cycle the stage finished.
    pub end_cycle: u32,
}

/// The pipeline-side half of a postcard: what the packet processor
/// observed while handling the sampled packet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlightStamp {
    /// Whether the microflow action cache served this packet.
    pub cache_hit: bool,
    /// Per-stage cycle stamps, in execution order. On a cache hit the
    /// stamps replay the memoized plan, so a packet's postcard is
    /// identical whether or not the cache intercepted it.
    pub stages: Vec<StageStamp>,
}

/// Final disposition of a sampled packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FlightVerdict {
    /// Forwarded out an egress interface.
    Forwarded {
        /// Simulated departure time, nanoseconds.
        departure_ns: u64,
    },
    /// Dropped for the given reason.
    Dropped {
        /// Why the packet was dropped.
        reason: DropReason,
    },
    /// Diverted to the embedded control plane.
    ToControl,
}

impl FlightVerdict {
    /// Stable lowercase label ("forwarded", "fifo_overflow", …).
    pub fn label(&self) -> &'static str {
        match self {
            FlightVerdict::Forwarded { .. } => "forwarded",
            FlightVerdict::Dropped { reason } => reason.label(),
            FlightVerdict::ToControl => "to_control",
        }
    }
}

impl ToJson for FlightVerdict {
    fn to_json(&self) -> Value {
        match self {
            FlightVerdict::ToControl => Value::Str("ToControl".into()),
            FlightVerdict::Forwarded { departure_ns } => {
                crate::json!({"Forwarded": {"departure_ns": *departure_ns}})
            }
            FlightVerdict::Dropped { reason } => {
                crate::json!({"Dropped": {"reason": reason.to_json()}})
            }
        }
    }
}

impl FromJson for FlightVerdict {
    fn from_json(v: &Value) -> Option<FlightVerdict> {
        if let Some(name) = v.as_str() {
            return match name {
                "ToControl" => Some(FlightVerdict::ToControl),
                _ => None,
            };
        }
        let object = v.as_object()?;
        if object.len() != 1 {
            return None;
        }
        let (tag, body) = object.iter().next()?;
        match tag.as_str() {
            "Forwarded" => Some(FlightVerdict::Forwarded {
                departure_ns: u64::from_json(&body["departure_ns"])?,
            }),
            "Dropped" => Some(FlightVerdict::Dropped {
                reason: DropReason::from_json(&body["reason"])?,
            }),
            _ => None,
        }
    }
}

/// One sampled packet's complete postcard.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlightRecord {
    /// Monotonic sample sequence number (lifetime, never resets —
    /// gaps across drains reveal ring overwrites).
    pub seq: u64,
    /// Packet arrival time at the module, nanoseconds.
    pub arrival_ns: u64,
    /// Ingress FIFO backlog in bytes when the packet arrived.
    pub queue_bytes: u64,
    /// Packets ahead of this one in the FIFO when it arrived.
    pub queue_pkts: u64,
    /// Whether the microflow action cache served this packet.
    pub cache_hit: bool,
    /// Per-stage cycle stamps (empty for packets that bypassed the
    /// pipeline or were dropped before admission).
    pub stages: Vec<StageStamp>,
    /// Final disposition.
    pub verdict: FlightVerdict,
}

crate::impl_json_struct!(StageStamp {
    stage,
    hit,
    start_cycle,
    end_cycle
});
crate::impl_json_struct!(FlightStamp { cache_hit, stages });
crate::impl_json_struct!(FlightRecord {
    seq,
    arrival_ns,
    queue_bytes,
    queue_pkts,
    cache_hit,
    stages,
    verdict
});

/// Fixed-capacity overwrite-oldest ring of flight records with the
/// same loss accounting as [`crate::EventRing`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRing {
    ring: VecDeque<FlightRecord>,
    capacity: usize,
    overwritten: u64,
    drained: u64,
}

impl Default for FlightRing {
    fn default() -> FlightRing {
        FlightRing::new(DEFAULT_FLIGHT_RING_CAPACITY)
    }
}

impl FlightRing {
    /// A ring holding at most `capacity` undrained records.
    pub fn new(capacity: usize) -> FlightRing {
        FlightRing {
            ring: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            overwritten: 0,
            drained: 0,
        }
    }

    /// Push a record, overwriting (and counting) the oldest when full.
    pub fn push(&mut self, record: FlightRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.overwritten += 1;
        }
        self.ring.push_back(record);
    }

    /// Remove and return all buffered records, oldest first.
    pub fn drain(&mut self) -> Vec<FlightRecord> {
        let out: Vec<FlightRecord> = self.ring.drain(..).collect();
        self.drained += out.len() as u64;
        out
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum number of buffered records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime count of records lost to overwrite.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Lifetime count of records successfully drained.
    pub fn drained(&self) -> u64 {
        self.drained
    }
}

/// Render flight records as chrome://tracing trace-event JSON
/// (the "JSON Array Format" with a `traceEvents` wrapper), loadable
/// directly in Perfetto or `chrome://tracing`.
///
/// Each sampled packet becomes one track (`tid` = sample sequence) of
/// complete ("X") events: an enclosing packet slice spanning arrival to
/// departure, with one nested slice per pipeline stage. `cycle_ns` is
/// the PPE clock period used to place stage boundaries in wall time.
/// Timestamps are microseconds, per the trace-event format.
pub fn chrome_trace(module_id: &str, records: &[FlightRecord], cycle_ns: f64) -> Value {
    let us = |ns: f64| ns / 1_000.0;
    let mut events = Vec::new();
    events.push(crate::json!({
        "name": "process_name",
        "ph": "M",
        "pid": 1u64,
        "args": {"name": module_id.to_string()}
    }));
    for r in records {
        let span_ns = match r.verdict {
            FlightVerdict::Forwarded { departure_ns } => {
                (departure_ns.saturating_sub(r.arrival_ns)) as f64
            }
            // No departure timestamp: span the stamped pipeline cycles.
            _ => r.stages.last().map_or(0.0, |s| f64::from(s.end_cycle)) * cycle_ns,
        };
        events.push(crate::json!({
            "name": format!("pkt {} [{}]", r.seq, r.verdict.label()),
            "ph": "X",
            "ts": us(r.arrival_ns as f64),
            "dur": us(span_ns),
            "pid": 1u64,
            "tid": r.seq,
            "args": {
                "queue_bytes": r.queue_bytes,
                "queue_pkts": r.queue_pkts,
                "cache_hit": r.cache_hit,
                "verdict": r.verdict.label().to_string()
            }
        }));
        for s in &r.stages {
            events.push(crate::json!({
                "name": format!("stage {}", s.stage),
                "ph": "X",
                "ts": us(r.arrival_ns as f64 + f64::from(s.start_cycle) * cycle_ns),
                "dur": us(f64::from(s.end_cycle - s.start_cycle) * cycle_ns),
                "pid": 1u64,
                "tid": r.seq,
                "args": {"hit": s.hit}
            }));
        }
    }
    crate::json!({
        "traceEvents": events.to_json(),
        "displayTimeUnit": "ns".to_string()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> FlightRecord {
        FlightRecord {
            seq,
            arrival_ns: 1_000 + seq,
            queue_bytes: 128,
            queue_pkts: 2,
            cache_hit: seq.is_multiple_of(2),
            stages: vec![
                StageStamp {
                    stage: 0,
                    hit: true,
                    start_cycle: 4,
                    end_cycle: 7,
                },
                StageStamp {
                    stage: 1,
                    hit: false,
                    start_cycle: 7,
                    end_cycle: 10,
                },
            ],
            verdict: FlightVerdict::Forwarded {
                departure_ns: 2_000 + seq,
            },
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        for verdict in [
            FlightVerdict::Forwarded { departure_ns: 77 },
            FlightVerdict::Dropped {
                reason: DropReason::FifoOverflow,
            },
            FlightVerdict::ToControl,
        ] {
            let mut r = record(3);
            r.verdict = verdict;
            let json = r.to_json().to_string();
            let back = FlightRecord::from_json(&Value::parse(&json).unwrap()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn verdict_labels() {
        assert_eq!(
            FlightVerdict::Forwarded { departure_ns: 1 }.label(),
            "forwarded"
        );
        assert_eq!(
            FlightVerdict::Dropped {
                reason: DropReason::LinkDown
            }
            .label(),
            "link_down"
        );
        assert_eq!(FlightVerdict::ToControl.label(), "to_control");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let mut ring = FlightRing::new(4);
        for seq in 0..10 {
            ring.push(record(seq));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.overwritten(), 6);
        let out = ring.drain();
        assert_eq!(
            out.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(ring.drained() + ring.overwritten(), 10);
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_capacity_clamps_to_one() {
        let mut ring = FlightRing::new(0);
        ring.push(record(0));
        ring.push(record(1));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn chrome_trace_has_trace_event_shape() {
        let records = vec![record(0), record(1)];
        let trace = chrome_trace("FSFP-0001", &records, 3.2);
        let object = trace.as_object().unwrap();
        let events = object["traceEvents"].as_array().unwrap();
        // Metadata event + (1 packet + 2 stage) slices per record.
        assert_eq!(events.len(), 1 + 2 * 3);
        for ev in events {
            let e = ev.as_object().unwrap();
            assert!(e["name"].as_str().is_some());
            let ph = e["ph"].as_str().unwrap();
            assert!(ph == "X" || ph == "M");
            if ph == "X" {
                assert!(e["ts"].as_f64().is_some());
                assert!(e["dur"].as_f64().is_some());
                assert!(e["pid"].as_u64().is_some());
                assert!(e["tid"].as_u64().is_some());
            }
        }
        // Stage slices nest inside their packet slice.
        let pkt = events[1].as_object().unwrap();
        let stage = events[2].as_object().unwrap();
        assert!(stage["ts"].as_f64().unwrap() >= pkt["ts"].as_f64().unwrap());
        // Round-trips through the parser (valid JSON).
        let text = trace.to_string();
        assert_eq!(Value::parse(&text).unwrap(), trace);
    }
}
