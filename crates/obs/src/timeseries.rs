//! Windowed time-series telemetry.
//!
//! Lifetime aggregates answer "how fast overall" but not "what happened
//! at 12:03 when p99.9 spiked". This module keeps a rotating ring of
//! fixed-width time buckets, each holding a mergeable latency histogram
//! plus rate counters, so a collector can compute `rate()` and
//! p99.9-over-window per module and fleet-wide.
//!
//! Rotation never loses data: when a bucket ages out of the ring it is
//! merged into a single `evicted` catch-all bucket, so the union of the
//! evicted bucket and the live windows always equals the lifetime
//! aggregate (a property the proptest suite checks bit-for-bit).

use crate::histogram::LatencyHistogram;

/// Default window width: 1 ms of simulated time.
pub const DEFAULT_WINDOW_WIDTH_NS: u64 = 1_000_000;

/// Default number of live windows retained before eviction.
pub const DEFAULT_WINDOW_CAPACITY: usize = 32;

/// One fixed-width time bucket of dataplane activity.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowBucket {
    /// Bucket start, nanoseconds since module boot (aligned to the
    /// series width; 0 for the evicted catch-all).
    pub start_ns: u64,
    /// Forwarding latency of packets that departed in this window.
    pub latency: LatencyHistogram,
    /// Packets forwarded in this window.
    pub forwarded: u64,
    /// Packets dropped by the app's verdict (explained drops).
    pub drops_app: u64,
    /// Packets dropped by the infrastructure — FIFO overflow, link
    /// down, unsorted arrival (unexplained drops, SLO-relevant).
    pub drops_unexplained: u64,
    /// Microflow-cache hits attributed to this window.
    pub cache_hits: u64,
    /// Microflow-cache misses attributed to this window.
    pub cache_misses: u64,
    /// Microflow-cache evictions attributed to this window — a sustained
    /// nonzero rate here is the signature of heavy-hitter set conflict
    /// (more live flows than ways in some sets).
    pub cache_evictions: u64,
    /// High-water mark of resident cache entries observed during this
    /// window. A gauge, not a counter: merging buckets (rotation or
    /// shard/fleet aggregation) takes the max across sources.
    pub cache_occupancy: u64,
}

impl WindowBucket {
    /// A bucket starting at `start_ns` with nothing recorded.
    pub fn at(start_ns: u64) -> WindowBucket {
        WindowBucket {
            start_ns,
            ..WindowBucket::default()
        }
    }

    /// True when nothing has been recorded into this bucket.
    pub fn is_empty(&self) -> bool {
        self.forwarded == 0
            && self.drops_app == 0
            && self.drops_unexplained == 0
            && self.cache_hits == 0
            && self.cache_misses == 0
            && self.cache_evictions == 0
            && self.latency.is_empty()
    }

    /// Packets observed in this window (forwarded plus all drops).
    pub fn packets(&self) -> u64 {
        self.forwarded + self.drops_app + self.drops_unexplained
    }

    /// Fraction of observed packets dropped unexplained (0.0 when the
    /// window saw no packets).
    pub fn unexplained_drop_rate(&self) -> f64 {
        if self.packets() == 0 {
            0.0
        } else {
            self.drops_unexplained as f64 / self.packets() as f64
        }
    }

    /// Cache hit rate over this window, `None` when it saw no lookups.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / lookups as f64)
        }
    }

    /// Fold another bucket into this one (histograms merge losslessly;
    /// counters add). Keeps the earlier `start_ns` of the two unless
    /// this bucket is still empty, in which case it adopts `other`'s.
    pub fn merge(&mut self, other: &WindowBucket) {
        if self.is_empty() {
            self.start_ns = other.start_ns;
        } else {
            self.start_ns = self.start_ns.min(other.start_ns);
        }
        self.latency.merge(&other.latency);
        self.forwarded += other.forwarded;
        self.drops_app += other.drops_app;
        self.drops_unexplained += other.drops_unexplained;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_occupancy = self.cache_occupancy.max(other.cache_occupancy);
    }
}

/// A rotating ring of [`WindowBucket`]s over simulated time.
///
/// Buckets are created on demand (quiet windows occupy no memory) and
/// kept sorted by `start_ns`. When more than `capacity` live windows
/// exist, the oldest is merged into the `evicted` catch-all — samples
/// are conserved across rotation, never double-counted or lost.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowedSeries {
    width_ns: u64,
    capacity: u64,
    windows: Vec<WindowBucket>,
    evicted: WindowBucket,
}

impl Default for WindowedSeries {
    fn default() -> WindowedSeries {
        WindowedSeries::new(DEFAULT_WINDOW_WIDTH_NS, DEFAULT_WINDOW_CAPACITY)
    }
}

impl WindowedSeries {
    /// A series of `capacity` live windows, each `width_ns` wide.
    /// Width and capacity are clamped to at least 1.
    pub fn new(width_ns: u64, capacity: usize) -> WindowedSeries {
        WindowedSeries {
            width_ns: width_ns.max(1),
            capacity: capacity.max(1) as u64,
            windows: Vec::new(),
            evicted: WindowBucket::default(),
        }
    }

    /// Window width in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Maximum number of live windows before eviction.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Live windows, oldest first.
    pub fn windows(&self) -> &[WindowBucket] {
        &self.windows
    }

    /// The catch-all bucket holding everything rotated out of the ring.
    pub fn evicted(&self) -> &WindowBucket {
        &self.evicted
    }

    fn aligned(&self, timestamp_ns: u64) -> u64 {
        timestamp_ns - timestamp_ns % self.width_ns
    }

    /// The bucket covering `timestamp_ns`, creating (and rotating) as
    /// needed. Timestamps older than the oldest live window land in the
    /// evicted catch-all so a late sample is counted, not lost.
    fn bucket_mut(&mut self, timestamp_ns: u64) -> &mut WindowBucket {
        let start = self.aligned(timestamp_ns);
        // Fast path: the newest window (packets arrive nearly in order).
        match self.windows.last().map(|w| w.start_ns) {
            Some(last) if last == start => {}
            Some(last) if start > last => {
                self.windows.push(WindowBucket::at(start));
                if self.windows.len() as u64 > self.capacity {
                    let old = self.windows.remove(0);
                    self.evicted.merge(&old);
                }
            }
            Some(_) => {
                // Slightly out of order: reverse scan the short ring.
                if let Some(idx) = self.windows.iter().rposition(|w| w.start_ns == start) {
                    return &mut self.windows[idx];
                }
                if self.windows.first().map(|w| w.start_ns > start) == Some(true) {
                    return &mut self.evicted;
                }
                // A gap between live windows: insert in order.
                let at = self
                    .windows
                    .iter()
                    .position(|w| w.start_ns > start)
                    .unwrap_or(self.windows.len());
                self.windows.insert(at, WindowBucket::at(start));
                return &mut self.windows[at];
            }
            None => self.windows.push(WindowBucket::at(start)),
        }
        self.windows.last_mut().expect("just pushed")
    }

    /// Record a forwarded packet and its latency at `timestamp_ns`.
    pub fn record_forwarded(&mut self, timestamp_ns: u64, latency_ns: f64) {
        let b = self.bucket_mut(timestamp_ns);
        b.forwarded += 1;
        b.latency.record_f64(latency_ns);
    }

    /// Record a dropped packet; `unexplained` is true for drops the app
    /// did not ask for (FIFO overflow, link down, unsorted arrival).
    pub fn record_drop(&mut self, timestamp_ns: u64, unexplained: bool) {
        let b = self.bucket_mut(timestamp_ns);
        if unexplained {
            b.drops_unexplained += 1;
        } else {
            b.drops_app += 1;
        }
    }

    /// Attribute a delta of microflow-cache activity to `timestamp_ns`:
    /// hit/miss/eviction deltas plus the current resident-entry count
    /// (recorded as the window's high-water mark). A window with no
    /// lookups or evictions records nothing — the occupancy gauge is
    /// only meaningful alongside cache activity, and quiet windows must
    /// not churn buckets.
    pub fn record_cache(
        &mut self,
        timestamp_ns: u64,
        hits: u64,
        misses: u64,
        evictions: u64,
        occupancy: u64,
    ) {
        if hits == 0 && misses == 0 && evictions == 0 {
            return;
        }
        let b = self.bucket_mut(timestamp_ns);
        b.cache_hits += hits;
        b.cache_misses += misses;
        b.cache_evictions += evictions;
        b.cache_occupancy = b.cache_occupancy.max(occupancy);
    }

    /// Everything the series has ever absorbed, folded into one bucket
    /// (evicted catch-all plus all live windows). By construction this
    /// equals the lifetime aggregate bit-for-bit.
    pub fn lifetime(&self) -> WindowBucket {
        let mut total = self.evicted.clone();
        for w in &self.windows {
            total.merge(w);
        }
        total
    }

    /// Merge another series' buckets into this one window-by-window
    /// (fleet-wide aggregation). Buckets with matching starts merge;
    /// the other's evicted catch-all folds into ours.
    pub fn merge(&mut self, other: &WindowedSeries) {
        self.evicted.merge(&other.evicted);
        for w in &other.windows {
            let start = self.aligned(w.start_ns);
            if let Some(mine) = self.windows.iter_mut().find(|m| m.start_ns == start) {
                mine.merge(w);
            } else {
                let at = self
                    .windows
                    .iter()
                    .position(|m| m.start_ns > w.start_ns)
                    .unwrap_or(self.windows.len());
                self.windows.insert(at, w.clone());
            }
        }
        while self.windows.len() as u64 > self.capacity {
            let old = self.windows.remove(0);
            self.evicted.merge(&old);
        }
    }
}

crate::impl_json_struct!(WindowBucket {
    start_ns,
    latency,
    forwarded,
    drops_app,
    drops_unexplained,
    cache_hits,
    cache_misses,
    cache_evictions,
    cache_occupancy
});
crate::impl_json_struct!(WindowedSeries {
    width_ns,
    capacity,
    windows,
    evicted
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, ToJson, Value};

    #[test]
    fn buckets_align_to_width() {
        let mut s = WindowedSeries::new(1_000, 4);
        s.record_forwarded(0, 10.0);
        s.record_forwarded(999, 20.0);
        s.record_forwarded(1_000, 30.0);
        assert_eq!(s.windows().len(), 2);
        assert_eq!(s.windows()[0].start_ns, 0);
        assert_eq!(s.windows()[0].forwarded, 2);
        assert_eq!(s.windows()[1].start_ns, 1_000);
        assert_eq!(s.windows()[1].forwarded, 1);
    }

    #[test]
    fn quiet_windows_are_skipped() {
        let mut s = WindowedSeries::new(1_000, 8);
        s.record_forwarded(500, 1.0);
        s.record_forwarded(10_500, 1.0);
        assert_eq!(s.windows().len(), 2);
        assert_eq!(s.windows()[1].start_ns, 10_000);
    }

    #[test]
    fn eviction_merges_into_catch_all() {
        let mut s = WindowedSeries::new(100, 2);
        for t in [0u64, 150, 250, 350] {
            s.record_forwarded(t, t as f64);
        }
        assert_eq!(s.windows().len(), 2);
        // Windows 0 and 100 rotated out; their packets survive.
        assert_eq!(s.evicted().forwarded, 2);
        assert_eq!(s.lifetime().forwarded, 4);
        assert_eq!(s.lifetime().latency.count(), 4);
    }

    #[test]
    fn late_samples_land_in_evicted_not_lost() {
        let mut s = WindowedSeries::new(100, 2);
        for t in [0u64, 150, 250, 350] {
            s.record_forwarded(t, 1.0);
        }
        // Oldest live window now starts at 200; t=20 is ancient.
        s.record_drop(20, true);
        assert_eq!(s.evicted().drops_unexplained, 1);
        assert_eq!(s.lifetime().drops_unexplained, 1);
    }

    #[test]
    fn out_of_order_within_ring_finds_its_bucket() {
        let mut s = WindowedSeries::new(100, 8);
        s.record_forwarded(50, 1.0);
        s.record_forwarded(250, 1.0);
        s.record_forwarded(80, 1.0); // back into the first window
        s.record_drop(150, false); // gap window between the two
        assert_eq!(s.windows().len(), 3);
        assert_eq!(
            s.windows().iter().map(|w| w.start_ns).collect::<Vec<_>>(),
            vec![0, 100, 200]
        );
        assert_eq!(s.windows()[0].forwarded, 2);
        assert_eq!(s.windows()[1].drops_app, 1);
    }

    #[test]
    fn lifetime_matches_reference_histogram() {
        let mut s = WindowedSeries::new(1_000, 3);
        let mut reference = LatencyHistogram::new();
        for i in 0..500u64 {
            let lat = (i * 37 % 9_000 + 100) as f64;
            s.record_forwarded(i * 61, lat);
            reference.record_f64(lat);
        }
        assert_eq!(s.lifetime().latency, reference);
        assert_eq!(s.lifetime().forwarded, 500);
    }

    #[test]
    fn rates_and_emptiness() {
        let mut b = WindowBucket::default();
        assert!(b.is_empty());
        assert_eq!(b.unexplained_drop_rate(), 0.0);
        assert_eq!(b.cache_hit_rate(), None);
        b.forwarded = 3;
        b.drops_unexplained = 1;
        b.cache_hits = 9;
        b.cache_misses = 1;
        assert!(!b.is_empty());
        assert!((b.unexplained_drop_rate() - 0.25).abs() < 1e-12);
        assert!((b.cache_hit_rate().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cache_deltas_attributed_to_window() {
        let mut s = WindowedSeries::new(1_000, 4);
        s.record_cache(100, 5, 2, 1, 40);
        s.record_cache(100, 0, 0, 0, 99); // no-op: creates no bucket churn
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.windows()[0].cache_hits, 5);
        assert_eq!(s.windows()[0].cache_misses, 2);
        assert_eq!(s.windows()[0].cache_evictions, 1);
        // Occupancy is a high-water mark, untouched by the no-op call.
        assert_eq!(s.windows()[0].cache_occupancy, 40);
        s.record_cache(200, 1, 0, 0, 38); // lower gauge never regresses the mark
        assert_eq!(s.windows()[0].cache_occupancy, 40);
        s.record_cache(300, 1, 0, 0, 55);
        assert_eq!(s.windows()[0].cache_occupancy, 55);
    }

    #[test]
    fn occupancy_merges_as_max_evictions_add() {
        let mut a = WindowBucket::default();
        let mut b = WindowBucket::default();
        a.cache_evictions = 3;
        a.cache_occupancy = 10;
        a.cache_misses = 1;
        b.cache_evictions = 4;
        b.cache_occupancy = 25;
        b.cache_misses = 1;
        a.merge(&b);
        assert_eq!(a.cache_evictions, 7);
        assert_eq!(a.cache_occupancy, 25);
        // A bucket with only evictions still counts as non-empty.
        let c = WindowBucket {
            cache_evictions: 1,
            ..WindowBucket::default()
        };
        assert!(!c.is_empty());
    }

    #[test]
    fn fleet_merge_lines_up_buckets() {
        let mut a = WindowedSeries::new(1_000, 4);
        let mut b = WindowedSeries::new(1_000, 4);
        a.record_forwarded(500, 10.0);
        b.record_forwarded(700, 20.0);
        b.record_forwarded(1_500, 30.0);
        a.merge(&b);
        assert_eq!(a.windows().len(), 2);
        assert_eq!(a.windows()[0].forwarded, 2);
        assert_eq!(a.windows()[1].forwarded, 1);
        assert_eq!(a.lifetime().forwarded, 3);
    }

    #[test]
    fn series_round_trips_through_json() {
        let mut s = WindowedSeries::new(100, 2);
        for t in [0u64, 150, 250, 350] {
            s.record_forwarded(t, t as f64 + 1.0);
        }
        s.record_drop(300, true);
        s.record_cache(320, 4, 1, 2, 17);
        let json = s.to_json().to_string();
        let back = WindowedSeries::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.lifetime(), s.lifetime());
    }

    #[test]
    fn width_and_capacity_clamp() {
        let s = WindowedSeries::new(0, 0);
        assert_eq!(s.width_ns(), 1);
        assert_eq!(s.capacity(), 1);
    }
}
