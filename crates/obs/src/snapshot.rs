//! The telemetry wire format.
//!
//! A [`TelemetrySnapshot`] is what one module serializes over its
//! OOB/management channel on each scrape: lifetime counters, the
//! latency histogram, the DOM/laser-health readout and the drained
//! event-ring contents. Every field is plain serde data so the host
//! can decode it without sharing module internals.

use crate::events::DataplaneEvent;
use crate::histogram::LatencyHistogram;

/// Floor applied when converting a zero/negative optical power to dBm,
/// standing in for the receiver sensitivity floor of a real module.
pub const DBM_FLOOR: f64 = -40.0;

/// Convert an optical power in milliwatts to dBm, clamped at
/// [`DBM_FLOOR`] so a dark lane serializes as a finite number.
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw > 0.0 {
        (10.0 * mw.log10()).max(DBM_FLOOR)
    } else {
        DBM_FLOOR
    }
}

/// Named DOM (digital optical monitoring) readout.
///
/// Replaces the bare `(f64, f64, f64, f64)` tuple the management
/// client used to return — with four same-typed fields, a tuple is an
/// invitation to swap tx for rx silently.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DomSnapshot {
    /// Transmit optical power, dBm.
    pub tx_power_dbm: f64,
    /// Receive optical power, dBm.
    pub rx_power_dbm: f64,
    /// Laser bias current, mA.
    pub bias_ma: f64,
    /// Module case temperature, °C.
    pub temp_c: f64,
}

impl DomSnapshot {
    /// Build a snapshot from raw milliwatt powers (the units the I²C
    /// DOM registers report in).
    pub fn from_milliwatts(
        tx_power_mw: f64,
        rx_power_mw: f64,
        bias_ma: f64,
        temp_c: f64,
    ) -> DomSnapshot {
        DomSnapshot {
            tx_power_dbm: mw_to_dbm(tx_power_mw),
            rx_power_dbm: mw_to_dbm(rx_power_mw),
            bias_ma,
            temp_c,
        }
    }
}

/// Frame/byte/error counters for one direction of one port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PortCounters {
    /// Frames seen.
    pub frames: u64,
    /// Bytes seen.
    pub bytes: u64,
    /// Errored frames.
    pub errors: u64,
}

impl PortCounters {
    /// Fold another port's counters into this one (shard merge).
    pub fn merge(&mut self, other: &PortCounters) {
        self.frames += other.frames;
        self.bytes += other.bytes;
        self.errors += other.errors;
    }
}

/// Lifetime packet-drop counters, broken out by reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DropCounters {
    /// Dropped because the ingress FIFO overflowed.
    pub fifo_overflow: u64,
    /// Dropped by the packet-processing app's verdict.
    pub app: u64,
    /// Dropped because the egress link was down.
    pub link: u64,
    /// Dropped because the packet arrived out of order in the offered trace.
    pub unsorted: u64,
}

impl DropCounters {
    /// Total drops across all reasons.
    pub fn total(&self) -> u64 {
        self.fifo_overflow + self.app + self.link + self.unsorted
    }

    /// Fold another module's drop counters into this one (shard merge).
    pub fn merge(&mut self, other: &DropCounters) {
        self.fifo_overflow += other.fifo_overflow;
        self.app += other.app;
        self.link += other.link;
        self.unsorted += other.unsorted;
    }
}

/// Lifetime microflow action-cache counters (the PPE fast path).
///
/// All four are monotonic. A packet that finds a live plan counts one
/// `hit`; a packet that has to take the slow path counts one `miss`;
/// displacing a live entry on insert counts one `eviction`; and a
/// plan discarded because its epoch is stale (the control plane
/// touched a table since it was recorded) counts one `invalidation`
/// (invalidated lookups also count as misses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Lookups that replayed a memoized plan.
    pub hits: u64,
    /// Lookups that fell through to the slow path.
    pub misses: u64,
    /// Live entries displaced by an insert into a full set.
    pub evictions: u64,
    /// Stale-epoch plans discarded at lookup time.
    pub invalidations: u64,
}

impl CacheStats {
    /// Fold another cache's counters into this one (shard merge).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }

    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Exact-match table geometry and lifetime counters (the PPE's
/// hardware hash tables — e.g. the NAT's source-IP table).
///
/// `capacity`/`occupied` are gauges read in O(1) from the flat table;
/// `hits`/`misses`/`insert_failures` are monotonic counters. All zero
/// when the running app exposes no table.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TableTelemetry {
    /// Total entry slots (buckets × ways).
    pub capacity: u64,
    /// Slots currently occupied.
    pub occupied: u64,
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Inserts rejected with a full bucket.
    pub insert_failures: u64,
}

impl TableTelemetry {
    /// Occupancy as a fraction of capacity (0.0 when there is no table).
    pub fn load_factor(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupied as f64 / self.capacity as f64
        }
    }

    /// Fold another shard's table telemetry into this one. Counters
    /// add; `capacity` and `occupied` take the maximum — shards hold
    /// *replicas* of the same table (control frames are broadcast), so
    /// summing them would multiply the apparent occupancy.
    pub fn merge_shard(&mut self, other: &TableTelemetry) {
        self.capacity = self.capacity.max(other.capacity);
        self.occupied = self.occupied.max(other.occupied);
        self.hits += other.hits;
        self.misses += other.misses;
        self.insert_failures += other.insert_failures;
    }
}

/// Lifetime control-plane/OTA resilience counters.
///
/// All monotonic. These are the module-side half of the chaos story:
/// how many duplicate chunks it absorbed, how many updates it tore
/// down, how many requests it had to reject. The host-side half
/// (retries, backoff, resyncs) lives in the management client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CtrlCounters {
    /// Duplicate last-chunk retransmits acknowledged idempotently.
    pub dup_chunk_acks: u64,
    /// Updates aborted (explicit `AbortUpdate` or error teardown).
    pub update_aborts: u64,
    /// Update FSM operations rejected with an error.
    pub update_errors: u64,
    /// `QueryUpdate` progress probes served (each one is a host
    /// resynchronising after a lost exchange).
    pub status_queries: u64,
}

/// One module's full telemetry export for one scrape.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TelemetrySnapshot {
    /// Module identifier (serial).
    pub module_id: String,
    /// Monotonic per-module snapshot sequence number.
    pub seq: u64,
    /// Name of the running packet-processing app.
    pub app: String,
    /// Version of the running app image.
    pub app_version: u32,
    /// Lifetime boot count.
    pub boots: u32,
    /// Electrical (host-facing) receive counters.
    pub edge_rx: PortCounters,
    /// Electrical (host-facing) transmit counters.
    pub edge_tx: PortCounters,
    /// Optical (line-facing) receive counters.
    pub optical_rx: PortCounters,
    /// Optical (line-facing) transmit counters.
    pub optical_tx: PortCounters,
    /// Lifetime drop counters by reason.
    pub drops: DropCounters,
    /// Lifetime per-packet forwarding latency histogram.
    pub latency: LatencyHistogram,
    /// DOM readout at snapshot time.
    pub dom: DomSnapshot,
    /// Laser fault diagnosis label ("healthy", "laser_degradation", …).
    pub laser_fault: String,
    /// 1 when the laser is diagnosed healthy, else 0 (gauge-friendly).
    pub laser_healthy: bool,
    /// Events drained from the module's trace ring for this snapshot.
    pub events: Vec<DataplaneEvent>,
    /// Lifetime count of events lost to ring overwrite (module ring
    /// plus any app-internal rings) — nonzero means `events` has gaps.
    pub events_overwritten: u64,
    /// Lifetime count of events drained over all snapshots.
    pub events_drained: u64,
    /// Microflow action-cache counters (all zero when the running app
    /// has no cache or it is disabled).
    pub cache: CacheStats,
    /// Exact-match table geometry and counters (all zero when the
    /// running app exposes no hardware table).
    pub table: TableTelemetry,
    /// Control-plane/OTA resilience counters.
    pub ctrl: CtrlCounters,
    /// Windowed time-series of recent activity (latency, drops, cache
    /// lookups per window), so the collector can compute rates and
    /// per-window quantiles instead of lifetime-only aggregates.
    pub windows: crate::timeseries::WindowedSeries,
}

impl TelemetrySnapshot {
    /// Fold one shard's snapshot into this one, producing the fleet
    /// view a collector would compute for a sharded dataplane: one
    /// logical module whose counters, histograms, windowed series and
    /// event trace span every shard.
    ///
    /// Additive state (port/drop/cache/ctrl counters, the latency
    /// histogram, the windowed series, event-loss tallies) merges
    /// exactly — every underlying structure is mergeable without
    /// approximation. Event traces concatenate and re-sort by
    /// timestamp. Identity fields (`module_id`, `app`, `app_version`,
    /// the DOM/laser readout) keep this snapshot's values — shards run
    /// identical images, so shard 0 speaks for the fleet — while `seq`
    /// and `boots` take the maximum across shards.
    pub fn merge_shard(&mut self, other: &TelemetrySnapshot) {
        self.seq = self.seq.max(other.seq);
        self.boots = self.boots.max(other.boots);
        self.edge_rx.merge(&other.edge_rx);
        self.edge_tx.merge(&other.edge_tx);
        self.optical_rx.merge(&other.optical_rx);
        self.optical_tx.merge(&other.optical_tx);
        self.drops.merge(&other.drops);
        self.latency.merge(&other.latency);
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.timestamp_ns);
        self.events_overwritten += other.events_overwritten;
        self.events_drained += other.events_drained;
        self.cache.merge(&other.cache);
        self.table.merge_shard(&other.table);
        self.ctrl.dup_chunk_acks += other.ctrl.dup_chunk_acks;
        self.ctrl.update_aborts += other.ctrl.update_aborts;
        self.ctrl.update_errors += other.ctrl.update_errors;
        self.ctrl.status_queries += other.ctrl.status_queries;
        self.windows.merge(&other.windows);
    }
}

crate::impl_json_struct!(DomSnapshot {
    tx_power_dbm,
    rx_power_dbm,
    bias_ma,
    temp_c
});
crate::impl_json_struct!(PortCounters {
    frames,
    bytes,
    errors
});
crate::impl_json_struct!(DropCounters {
    fifo_overflow,
    app,
    link,
    unsorted
});
crate::impl_json_struct!(CacheStats {
    hits,
    misses,
    evictions,
    invalidations
});
crate::impl_json_struct!(TableTelemetry {
    capacity,
    occupied,
    hits,
    misses,
    insert_failures
});
crate::impl_json_struct!(CtrlCounters {
    dup_chunk_acks,
    update_aborts,
    update_errors,
    status_queries
});
crate::impl_json_struct!(TelemetrySnapshot {
    module_id,
    seq,
    app,
    app_version,
    boots,
    edge_rx,
    edge_tx,
    optical_rx,
    optical_tx,
    drops,
    latency,
    dom,
    laser_fault,
    laser_healthy,
    events,
    events_overwritten,
    events_drained,
    cache,
    table,
    ctrl,
    windows,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    #[test]
    fn mw_to_dbm_reference_points() {
        assert!((mw_to_dbm(1.0) - 0.0).abs() < 1e-9);
        assert!((mw_to_dbm(2.0) - 3.0103).abs() < 1e-3);
        assert!((mw_to_dbm(0.5) + 3.0103).abs() < 1e-3);
        assert_eq!(mw_to_dbm(0.0), DBM_FLOOR);
        assert_eq!(mw_to_dbm(-1.0), DBM_FLOOR);
    }

    #[test]
    fn dom_snapshot_from_milliwatts() {
        let d = DomSnapshot::from_milliwatts(1.0, 0.5, 6.5, 41.0);
        assert!((d.tx_power_dbm - 0.0).abs() < 1e-9);
        assert!(d.rx_power_dbm < 0.0);
        assert_eq!(d.bias_ma, 6.5);
        assert_eq!(d.temp_c, 41.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut latency = LatencyHistogram::new();
        latency.record(300);
        latency.record(1_200);
        let snap = TelemetrySnapshot {
            module_id: "FSFP-0003".into(),
            seq: 7,
            app: "l4-firewall".into(),
            app_version: 2,
            boots: 1,
            edge_rx: PortCounters {
                frames: 10,
                bytes: 12_800,
                errors: 0,
            },
            edge_tx: PortCounters {
                frames: 9,
                bytes: 11_520,
                errors: 0,
            },
            optical_rx: PortCounters::default(),
            optical_tx: PortCounters {
                frames: 9,
                bytes: 11_520,
                errors: 1,
            },
            drops: DropCounters {
                fifo_overflow: 1,
                app: 2,
                link: 0,
                unsorted: 3,
            },
            latency,
            dom: DomSnapshot::from_milliwatts(1.0, 0.8, 6.0, 40.0),
            laser_fault: "healthy".into(),
            laser_healthy: true,
            events: vec![DataplaneEvent {
                timestamp_ns: 5,
                kind: EventKind::AuthReject,
            }],
            events_overwritten: 0,
            events_drained: 1,
            cache: CacheStats {
                hits: 900,
                misses: 100,
                evictions: 4,
                invalidations: 2,
            },
            table: TableTelemetry {
                capacity: 32_768,
                occupied: 8_192,
                hits: 700,
                misses: 300,
                insert_failures: 5,
            },
            ctrl: CtrlCounters {
                dup_chunk_acks: 3,
                update_aborts: 1,
                update_errors: 2,
                status_queries: 5,
            },
            windows: {
                let mut w = crate::timeseries::WindowedSeries::new(1_000_000, 8);
                w.record_forwarded(500, 300.0);
                w.record_forwarded(1_200_000, 1_200.0);
                w.record_drop(1_300_000, true);
                w
            },
        };
        use crate::json::{FromJson, ToJson, Value};
        let json = snap.to_json().to_string();
        let back = TelemetrySnapshot::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.drops.total(), 6);
        assert_eq!(back.latency.count(), 2);
        assert_eq!(back.cache.lookups(), 1000);
        assert!((back.cache.hit_rate() - 0.9).abs() < 1e-12);
        assert!((back.table.load_factor() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shard_merge_sums_counters_and_histograms() {
        fn shard_snap(shard: u64) -> TelemetrySnapshot {
            let mut latency = LatencyHistogram::new();
            latency.record(100 * (shard + 1));
            let mut windows = crate::timeseries::WindowedSeries::new(1_000_000, 8);
            windows.record_forwarded(500, 100.0 * (shard + 1) as f64);
            TelemetrySnapshot {
                module_id: format!("FSFP-S{shard}"),
                seq: 1 + shard,
                app: "nat44".into(),
                app_version: 1,
                boots: 1,
                edge_rx: PortCounters {
                    frames: 10 + shard,
                    bytes: 640,
                    errors: 0,
                },
                edge_tx: PortCounters::default(),
                optical_rx: PortCounters::default(),
                optical_tx: PortCounters {
                    frames: 10 + shard,
                    bytes: 640,
                    errors: shard,
                },
                drops: DropCounters {
                    fifo_overflow: shard,
                    app: 1,
                    link: 0,
                    unsorted: 0,
                },
                latency,
                dom: DomSnapshot::from_milliwatts(1.0, 0.8, 6.0, 40.0),
                laser_fault: "healthy".into(),
                laser_healthy: true,
                events: vec![DataplaneEvent {
                    timestamp_ns: 10 - shard,
                    kind: EventKind::AuthReject,
                }],
                events_overwritten: shard,
                events_drained: 1,
                cache: CacheStats {
                    hits: 100 * (shard + 1),
                    misses: 10,
                    evictions: 0,
                    invalidations: 0,
                },
                table: TableTelemetry {
                    capacity: 1024,
                    occupied: 100 + shard,
                    hits: 50,
                    misses: 5,
                    insert_failures: shard,
                },
                ctrl: CtrlCounters {
                    dup_chunk_acks: shard,
                    update_aborts: 0,
                    update_errors: 0,
                    status_queries: 1,
                },
                windows,
            }
        }
        let mut merged = shard_snap(0);
        merged.merge_shard(&shard_snap(1));
        // Additive state sums exactly...
        assert_eq!(merged.edge_rx.frames, 21);
        assert_eq!(merged.optical_tx.errors, 1);
        assert_eq!(merged.drops.total(), 3);
        assert_eq!(merged.latency.count(), 2);
        assert_eq!(merged.cache.hits, 300);
        // Table counters add; geometry/occupancy take the replica max.
        assert_eq!(merged.table.hits, 100);
        assert_eq!(merged.table.insert_failures, 1);
        assert_eq!(merged.table.capacity, 1024);
        assert_eq!(merged.table.occupied, 101);
        assert_eq!(merged.ctrl.dup_chunk_acks, 1);
        assert_eq!(merged.events_overwritten, 1);
        assert_eq!(merged.events_drained, 2);
        // ...events concatenate in timestamp order...
        assert_eq!(merged.events.len(), 2);
        assert!(merged.events[0].timestamp_ns <= merged.events[1].timestamp_ns);
        // ...windows fold bucket-wise (same bucket here)...
        assert_eq!(merged.windows.windows().len(), 1);
        assert_eq!(merged.windows.lifetime().packets(), 2);
        // ...and identity stays with the receiver, seq/boots take max.
        assert_eq!(merged.module_id, "FSFP-S0");
        assert_eq!(merged.seq, 2);
        assert_eq!(merged.boots, 1);
    }

    #[test]
    fn cache_stats_rates() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            invalidations: 0,
        };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
