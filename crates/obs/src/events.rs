//! Dataplane event trace ring.
//!
//! Modeled on a hardware trace buffer: a fixed-capacity ring that the
//! dataplane pushes events into at line rate and the management plane
//! drains out-of-band. When the ring is full the oldest event is
//! overwritten — that is the only behaviour a line-rate producer can
//! afford — but every overwrite increments a counter that is exported
//! with each drain, so event loss shows up in telemetry instead of
//! disappearing.

use crate::json::{FromJson, ToJson, Value};
use std::collections::VecDeque;

/// Default ring capacity; matches a small on-module SRAM trace buffer.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DropReason {
    /// Ingress FIFO overflowed (module could not keep up with arrivals).
    FifoOverflow,
    /// The packet-processing app returned a drop verdict.
    App,
    /// The egress link was down or unusable.
    LinkDown,
    /// The in-pipeline parser rejected the packet.
    ParseError,
    /// The packet arrived out of order in an offered trace (host-composed
    /// traces must be sorted by arrival time; stragglers are dropped and
    /// counted instead of aborting the run).
    UnsortedArrival,
}

impl DropReason {
    /// Stable lowercase label used in Prometheus metric labels.
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::FifoOverflow => "fifo_overflow",
            DropReason::App => "app",
            DropReason::LinkDown => "link_down",
            DropReason::ParseError => "parse_error",
            DropReason::UnsortedArrival => "unsorted_arrival",
        }
    }
}

/// What happened, without the when.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EventKind {
    /// A packet was dropped for the given reason.
    Drop {
        /// Why the packet was dropped.
        reason: DropReason,
    },
    /// The pipeline parser could not parse a packet.
    ParseError,
    /// A table lookup missed in a pipeline stage. The event carries the
    /// stage *index* — a fixed-width field a line-rate producer can
    /// emit without copying the stage's name; the name table lives with
    /// whoever renders the trace (drain/export time).
    TableMiss {
        /// Index of the stage whose table missed.
        stage: u8,
    },
    /// A new app image was staged into a flash slot.
    Reprogram {
        /// Flash slot the image was written to.
        slot: u8,
    },
    /// The module rebooted (or tried to) into a flash slot.
    Reboot {
        /// Flash slot the boot targeted.
        slot: u8,
        /// Whether the boot verified and succeeded.
        ok: bool,
    },
    /// A control frame failed authentication and was rejected.
    AuthReject,
    /// An optical link dropped below its power budget.
    LinkDown,
    /// An in-progress firmware update was torn down before activation
    /// (host-requested abort or error teardown).
    UpdateAbort,
}

impl EventKind {
    /// Stable lowercase label used in Prometheus metric labels.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Drop { .. } => "drop",
            EventKind::ParseError => "parse_error",
            EventKind::TableMiss { .. } => "table_miss",
            EventKind::Reprogram { .. } => "reprogram",
            EventKind::Reboot { .. } => "reboot",
            EventKind::AuthReject => "auth_reject",
            EventKind::LinkDown => "link_down",
            EventKind::UpdateAbort => "update_abort",
        }
    }
}

impl ToJson for DropReason {
    fn to_json(&self) -> Value {
        // Externally tagged, matching serde's default enum encoding.
        Value::Str(
            match self {
                DropReason::FifoOverflow => "FifoOverflow",
                DropReason::App => "App",
                DropReason::LinkDown => "LinkDown",
                DropReason::ParseError => "ParseError",
                DropReason::UnsortedArrival => "UnsortedArrival",
            }
            .to_string(),
        )
    }
}

impl FromJson for DropReason {
    fn from_json(v: &Value) -> Option<DropReason> {
        match v.as_str()? {
            "FifoOverflow" => Some(DropReason::FifoOverflow),
            "App" => Some(DropReason::App),
            "LinkDown" => Some(DropReason::LinkDown),
            "ParseError" => Some(DropReason::ParseError),
            "UnsortedArrival" => Some(DropReason::UnsortedArrival),
            _ => None,
        }
    }
}

impl ToJson for EventKind {
    fn to_json(&self) -> Value {
        match self {
            EventKind::ParseError => Value::Str("ParseError".into()),
            EventKind::AuthReject => Value::Str("AuthReject".into()),
            EventKind::LinkDown => Value::Str("LinkDown".into()),
            EventKind::UpdateAbort => Value::Str("UpdateAbort".into()),
            EventKind::Drop { reason } => {
                crate::json!({"Drop": {"reason": reason.to_json()}})
            }
            EventKind::TableMiss { stage } => {
                crate::json!({"TableMiss": {"stage": *stage}})
            }
            EventKind::Reprogram { slot } => {
                crate::json!({"Reprogram": {"slot": *slot}})
            }
            EventKind::Reboot { slot, ok } => {
                crate::json!({"Reboot": {"slot": *slot, "ok": *ok}})
            }
        }
    }
}

impl FromJson for EventKind {
    fn from_json(v: &Value) -> Option<EventKind> {
        if let Some(name) = v.as_str() {
            return match name {
                "ParseError" => Some(EventKind::ParseError),
                "AuthReject" => Some(EventKind::AuthReject),
                "LinkDown" => Some(EventKind::LinkDown),
                "UpdateAbort" => Some(EventKind::UpdateAbort),
                _ => None,
            };
        }
        let object = v.as_object()?;
        let (tag, body) = object.iter().next()?;
        if object.len() != 1 {
            return None;
        }
        match tag.as_str() {
            "Drop" => Some(EventKind::Drop {
                reason: DropReason::from_json(&body["reason"])?,
            }),
            "TableMiss" => Some(EventKind::TableMiss {
                stage: u8::from_json(&body["stage"])?,
            }),
            "Reprogram" => Some(EventKind::Reprogram {
                slot: u8::from_json(&body["slot"])?,
            }),
            "Reboot" => Some(EventKind::Reboot {
                slot: u8::from_json(&body["slot"])?,
                ok: body["ok"].as_bool()?,
            }),
            _ => None,
        }
    }
}

/// One traced dataplane event.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataplaneEvent {
    /// Module-local timestamp of the event, nanoseconds.
    pub timestamp_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

crate::impl_json_struct!(DataplaneEvent { timestamp_ns, kind });

/// Fixed-capacity overwrite-oldest event ring with loss accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRing {
    ring: VecDeque<DataplaneEvent>,
    capacity: usize,
    /// Lifetime count of events pushed out of the ring unread.
    overwritten: u64,
    /// Lifetime count of events handed to a drain call.
    drained: u64,
}

impl Default for EventRing {
    fn default() -> EventRing {
        EventRing::new(DEFAULT_RING_CAPACITY)
    }
}

impl EventRing {
    /// A ring holding at most `capacity` undrained events.
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            ring: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            overwritten: 0,
            drained: 0,
        }
    }

    /// Push an event, overwriting (and counting) the oldest when full.
    pub fn push(&mut self, event: DataplaneEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.overwritten += 1;
        }
        self.ring.push_back(event);
    }

    /// Convenience: push an event from its parts.
    pub fn record(&mut self, timestamp_ns: u64, kind: EventKind) {
        self.push(DataplaneEvent { timestamp_ns, kind });
    }

    /// Remove and return all buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<DataplaneEvent> {
        let out: Vec<DataplaneEvent> = self.ring.drain(..).collect();
        self.drained += out.len() as u64;
        out
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum number of buffered events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime count of events lost to overwrite — never resets, so a
    /// collector diffing successive snapshots sees every loss window.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Lifetime count of events successfully drained.
    pub fn drained(&self) -> u64 {
        self.drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> DataplaneEvent {
        DataplaneEvent {
            timestamp_ns: t,
            kind: EventKind::ParseError,
        }
    }

    #[test]
    fn drain_returns_events_in_order() {
        let mut r = EventRing::new(8);
        for t in 0..5 {
            r.push(ev(t));
        }
        let out = r.drain();
        assert_eq!(out.len(), 5);
        assert!(out
            .windows(2)
            .all(|w| w[0].timestamp_ns < w[1].timestamp_ns));
        assert!(r.is_empty());
        assert_eq!(r.drained(), 5);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts() {
        let mut r = EventRing::new(4);
        for t in 0..10 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 6);
        let out = r.drain();
        // The survivors are the newest four.
        assert_eq!(
            out.iter().map(|e| e.timestamp_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        // Conservation: pushed == drained + overwritten + buffered.
        assert_eq!(r.drained() + r.overwritten(), 10);
    }

    #[test]
    fn accounting_survives_interleaved_drains() {
        let mut r = EventRing::new(2);
        let mut pushed = 0u64;
        let mut collected = 0u64;
        for round in 0..50u64 {
            for t in 0..(round % 5) {
                r.push(ev(t));
                pushed += 1;
            }
            collected += r.drain().len() as u64;
        }
        assert_eq!(pushed, collected + r.overwritten());
        assert_eq!(r.drained(), collected);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.overwritten(), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DropReason::FifoOverflow.label(), "fifo_overflow");
        assert_eq!(
            EventKind::Drop {
                reason: DropReason::App
            }
            .label(),
            "drop"
        );
        assert_eq!(EventKind::TableMiss { stage: 3 }.label(), "table_miss");
        assert_eq!(EventKind::Reboot { slot: 1, ok: true }.label(), "reboot");
    }
}
