//! Crossbar-fabric telemetry wire types.
//!
//! A crosspoint-queued crossbar has per-(input, output) buffering, so
//! its interesting counters are a (sparse) matrix, not the per-module
//! scalars [`TelemetrySnapshot`](crate::TelemetrySnapshot) carries.
//! [`XbarTelemetry`] is the switch-level snapshot a host bridge exports
//! alongside its cages' ordinary module snapshots; the fleet collector
//! renders it as the `flexsfp_xbar_*` Prometheus family.
//!
//! Per-crosspoint entries are serialized sparsely — only crosspoints
//! that ever held a frame appear — so a 48×48 ToR with a handful of hot
//! columns stays a handful of samples, not 2 304.

/// Lifetime counters of one crosspoint queue that saw traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrosspointCounters {
    /// Ingress port of the crosspoint.
    pub input: u64,
    /// Egress port of the crosspoint.
    pub output: u64,
    /// Frames accepted into the queue.
    pub enqueued: u64,
    /// Frames granted (popped) by the output's arbiter.
    pub granted: u64,
    /// Frames rejected because the queue was full.
    pub dropped: u64,
    /// Deepest occupancy ever observed.
    pub high_water: u64,
}

crate::impl_json_struct!(CrosspointCounters {
    input,
    output,
    enqueued,
    granted,
    dropped,
    high_water,
});

/// Switch-level crossbar telemetry: matrix geometry, aggregate
/// counters, per-output arbitration grants and the sparse per-crosspoint
/// detail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct XbarTelemetry {
    /// Port count (the matrix is square).
    pub ports: u64,
    /// Slots per crosspoint queue.
    pub depth: u64,
    /// Frames accepted into some crosspoint queue.
    pub enqueued: u64,
    /// Frames granted by output arbitration.
    pub granted: u64,
    /// Frames rejected on a full crosspoint.
    pub dropped: u64,
    /// Deepest occupancy any crosspoint ever reached.
    pub high_water: u64,
    /// Grants issued by each output's round-robin arbiter, indexed by
    /// output port.
    pub output_grants: Vec<u64>,
    /// Per-crosspoint counters, sparse: only crosspoints that ever
    /// accepted, dropped or granted a frame appear.
    pub crosspoints: Vec<CrosspointCounters>,
}

crate::impl_json_struct!(XbarTelemetry {
    ports,
    depth,
    enqueued,
    granted,
    dropped,
    high_water,
    output_grants,
    crosspoints,
});

impl XbarTelemetry {
    /// Frames currently sitting in crosspoint queues (accepted but not
    /// yet granted).
    pub fn queued(&self) -> u64 {
        self.enqueued.saturating_sub(self.granted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FromJson, ToJson, Value};

    #[test]
    fn xbar_telemetry_round_trips_through_json() {
        let t = XbarTelemetry {
            ports: 48,
            depth: 32,
            enqueued: 1_000,
            granted: 990,
            dropped: 7,
            high_water: 31,
            output_grants: vec![3, 0, 987],
            crosspoints: vec![
                CrosspointCounters {
                    input: 0,
                    output: 47,
                    enqueued: 500,
                    granted: 495,
                    dropped: 5,
                    high_water: 31,
                },
                CrosspointCounters {
                    input: 3,
                    output: 47,
                    enqueued: 500,
                    granted: 495,
                    dropped: 2,
                    high_water: 12,
                },
            ],
        };
        let text = t.to_json().to_string();
        let back = XbarTelemetry::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.queued(), 10);
    }
}
