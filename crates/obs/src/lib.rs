//! # flexsfp-obs
//!
//! The fleet-wide observability layer. The paper's operational claim
//! (§4.2, §5.3) is that FlexSFP's value comes from *visibility inside
//! the cable*: line-rate counters, DOM/laser health and failure
//! diagnosis that the host can stream out of every module. This crate
//! provides the shared primitives every other crate builds on:
//!
//! * [`histogram`] — a log-linear HDR-style latency histogram with
//!   bounded memory, ≤1 % relative quantile error and lossless merging
//!   (the single percentile implementation for the whole workspace);
//! * [`events`] — a fixed-capacity dataplane event ring modeled on a
//!   hardware trace buffer: overwrite-oldest semantics with an exposed
//!   overwrite counter, so event loss is never silent;
//! * [`snapshot`] — the [`TelemetrySnapshot`] wire format a module
//!   serializes over its OOB/management channel, plus the named
//!   [`DomSnapshot`] DOM readout;
//! * [`trace`] — the flight recorder's INT-style per-packet postcards
//!   ([`FlightRecord`]) in a bounded [`FlightRing`], plus a
//!   chrome://tracing exporter ([`trace::chrome_trace`]) so sampled
//!   packets open directly in Perfetto;
//! * [`timeseries`] — a rotating ring of time buckets
//!   ([`WindowedSeries`]) with mergeable per-window histograms and rate
//!   counters, so collectors can compute `rate()` and p99.9-over-window
//!   instead of lifetime-only aggregates;
//! * [`slo`] — [`SloSpec`] evaluation over a windowed series into an
//!   [`SloReport`] naming each breach window;
//! * [`xbar`] — the crossbar-fabric telemetry snapshot
//!   ([`XbarTelemetry`]) a rack bridge exports next to its cages'
//!   module snapshots, with sparse per-crosspoint counters;
//! * [`prometheus`] — Prometheus text-exposition rendering helpers used
//!   by the host-side fleet collector;
//! * [`json`] — a dependency-free JSON value/parser/emitter (with the
//!   [`json!`] macro and [`json::ToJson`]/[`json::FromJson`] traits)
//!   that the control plane, bitstream container and exporters use so
//!   the default build needs no registry access.
//!
//! The crate is a leaf: it has no dependencies at all, so the PPE, the
//! module core, the host tooling and the bench harness can all share
//! one set of telemetry types without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod histogram;
pub mod json;
pub mod prometheus;
pub mod slo;
pub mod snapshot;
pub mod timeseries;
pub mod trace;
pub mod xbar;

pub use events::{DataplaneEvent, DropReason, EventKind, EventRing};
pub use histogram::LatencyHistogram;
pub use json::{FromJson, ToJson, Value};
pub use prometheus::PromText;
pub use slo::{SloBreach, SloReport, SloSpec};
pub use snapshot::{
    CacheStats, CtrlCounters, DomSnapshot, DropCounters, PortCounters, TableTelemetry,
    TelemetrySnapshot,
};
pub use timeseries::{WindowBucket, WindowedSeries};
pub use trace::{FlightRecord, FlightRing, FlightStamp, FlightVerdict, StageStamp};
pub use xbar::{CrosspointCounters, XbarTelemetry};
