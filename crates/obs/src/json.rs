//! Minimal in-tree JSON: a dynamic [`Value`], a strict parser, compact
//! and pretty emitters, the [`json!`] construction macro and the
//! [`ToJson`]/[`FromJson`] conversion traits.
//!
//! This module exists so the default-feature workspace builds with zero
//! external dependencies: the control plane, the bitstream container,
//! the telemetry exporters and the experiment harness all speak JSON,
//! and a registry-free build cannot pull in `serde_json`. The dialect
//! is plain RFC 8259 JSON; the API deliberately mirrors the small slice
//! of `serde_json` the workspace used (`Value`, `json!`, `as_u64`,
//! indexing), so swapping back is a path change, not a rewrite.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Numbers keep three representations so that `u64` counters round-trip
/// exactly (a single `f64` variant would corrupt values above 2^53,
/// which lifetime byte counters can reach).
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap), matching the default
    /// `serde_json` map and keeping emission deterministic.
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

/// Numbers compare by numeric value across the three variants, so a
/// `40.0` that serialized as `40` and re-parsed as an integer still
/// equals the original.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => {
                u64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            (UInt(a), Float(b)) | (Float(b), UInt(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl Value {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Any numeric value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup that never panics: `null` on a missing key or a
    /// non-object receiver (mirrors `serde_json` indexing).
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Element lookup that never panics.
    pub fn get_index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Parse a JSON document. The whole input must be one value plus
    /// optional trailing whitespace.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Render with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx)
    }
}

// ---------------------------------------------------------------- emit

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emit a float so it re-parses as a float: finite values keep a `.` or
/// exponent; non-finite values (invalid JSON) degrade to `null`.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(e, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(e, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(self, &mut s);
        f.write_str(&s)
    }
}

// --------------------------------------------------------------- parse

/// Parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Nesting cap: control-plane payloads come off the network, and a
/// recursive-descent parser must bound its stack against `[[[[…`.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &'static str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        self.depth += 1;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        self.depth += 1;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut n = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let v = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            n = n * 16 + v;
            self.pos += 1;
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Multi-byte UTF-8 sequences pass through verbatim;
                    // the input is already a valid &str.
                    let start = self.pos;
                    let mut end = self.pos + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    return match i64::try_from(n) {
                        Ok(n) => Ok(Value::Int(-n)),
                        // i64::MIN: magnitude one past i64::MAX.
                        Err(_) if n == (1u64 << 63) => Ok(Value::Int(i64::MIN)),
                        Err(_) => Ok(Value::Float(-(n as f64))),
                    };
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

// -------------------------------------------------------- conversions

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::UInt(n as u64)
            }
        }
    )*};
}
impl_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                let n = n as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Float(f64::from(f))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

// ------------------------------------------------------------- traits

/// Types that can render themselves as a JSON [`Value`].
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Value;
}

/// Types that can reconstruct themselves from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Parse from a value; `None` on shape mismatch.
    fn from_json(v: &Value) -> Option<Self>;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Option<Value> {
        Some(v.clone())
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Option<$t> {
                <$t>::try_from(v.as_u64()?).ok()
            }
        }
    )*};
}
impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::from(*self)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Option<$t> {
                <$t>::try_from(v.as_i64()?).ok()
            }
        }
    )*};
}
impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Option<f64> {
        v.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Option<bool> {
        v.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Option<String> {
        v.as_str().map(str::to_string)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Option<Vec<T>> {
        v.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Option<Option<T>> {
        if v.is_null() {
            Some(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<T: FromJson> FromJson for BTreeMap<String, T> {
    fn from_json(v: &Value) -> Option<BTreeMap<String, T>> {
        v.as_object()?
            .iter()
            .map(|(k, v)| T::from_json(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! impl_json_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: FromJson),+> FromJson for ($($t,)+) {
            fn from_json(v: &Value) -> Option<Self> {
                let a = v.as_array()?;
                let mut it = a.iter();
                let out = ($($t::from_json(it.next()?)?,)+);
                if it.next().is_some() {
                    return None;
                }
                Some(out)
            }
        }
    )*};
}
impl_json_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Derive [`ToJson`]/[`FromJson`] for a plain struct as a JSON object
/// with one member per named field (fields must implement the traits;
/// works with private fields when invoked in the defining module).
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                let mut object = ::std::collections::BTreeMap::new();
                $(
                    object.insert(
                        ::std::string::String::from(::core::stringify!($field)),
                        $crate::json::ToJson::to_json(&self.$field),
                    );
                )+
                $crate::json::Value::Object(object)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Value) -> ::core::option::Option<Self> {
                let object = v.as_object()?;
                ::core::option::Option::Some(Self {
                    $(
                        $field: $crate::json::FromJson::from_json(
                            object
                                .get(::core::stringify!($field))
                                .unwrap_or(&$crate::json::Value::Null),
                        )?,
                    )+
                })
            }
        }
    };
}

// -------------------------------------------------------------- json!

/// Construct a [`Value`] from a JSON literal, `serde_json::json!`-style:
/// `json!({"port": 80, "backends": [1, 2]})`. Interpolated expressions
/// go through `Value::from`.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`] (a token-tree muncher in the
/// style of `serde_json`'s).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Done with trailing comma.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    // Done without trailing comma.
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    // Next element is `null`.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    // Next element is `true`.
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    // Next element is `false`.
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    // Next element is an array.
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    // Next element is an object.
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element is an expression with no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the entry followed by a trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the last entry without a trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Next value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    // Next value is `true`.
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    // Next value is `false`.
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    // Next value is an array.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Next value is an object.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression with no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch a token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    // Primary entry points.
    (null) => {
        $crate::json::Value::Null
    };
    (true) => {
        $crate::json::Value::Bool(true)
    };
    (false) => {
        $crate::json::Value::Bool(false)
    };
    ([]) => {
        $crate::json::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::json::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::json::Value::Object(::std::collections::BTreeMap::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::json::Value::Object({
            let mut object = ::std::collections::BTreeMap::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::json::Value::from($other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "42", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn numbers_preserve_width_and_sign() {
        assert_eq!(
            Value::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            Value::parse("-9223372036854775808").unwrap().as_i64(),
            Some(i64::MIN)
        );
        let f = Value::parse("2.5e3").unwrap();
        assert_eq!(f.as_f64(), Some(2500.0));
        assert_eq!(f.as_u64(), None);
    }

    #[test]
    fn floats_emit_reparseably() {
        assert_eq!(Value::Float(40.0).to_string(), "40.0");
        assert_eq!(Value::Float(0.5).to_string(), "0.5");
        let back = Value::parse(&Value::Float(40.0).to_string()).unwrap();
        assert!(matches!(back, Value::Float(_)));
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn cross_variant_numeric_equality() {
        assert_eq!(Value::UInt(40), Value::Float(40.0));
        assert_eq!(Value::UInt(7), Value::Int(7));
        assert_ne!(Value::UInt(7), Value::Int(-7));
        assert_ne!(Value::UInt(1), Value::Bool(true));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t snowman\u{2603} nul\u{1}";
        let v = Value::Str(original.into());
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap().as_str(), Some(original));
        // \u escapes, including a surrogate pair.
        let parsed = Value::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("é😀"));
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":"x","d":true}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v["a"][1], Value::Float(2.5));
        assert_eq!(v["a"][2]["b"], Value::Null);
        assert_eq!(v["missing"]["deep"], Value::Null);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"unterminated",
            "[1] trailing",
            "+1",
            "nan",
            "\"\u{1}\"",
        ] {
            // Raw control char needs constructing without the escape.
            assert!(Value::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn deep_nesting_bounded() {
        let text = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Value::parse(&text).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn json_macro_builds_nested_documents() {
        let port = 443u16;
        let v = json!({
            "kind": "gre",
            "endpoints": [1, 2],
            "port": port,
            "nested": {"deep": [{"x": 1u64}], "flag": true},
            "nothing": null,
        });
        assert_eq!(v["kind"].as_str(), Some("gre"));
        assert_eq!(v["endpoints"].as_array().unwrap().len(), 2);
        assert_eq!(v["port"].as_u64(), Some(443));
        assert_eq!(v["nested"]["deep"][0]["x"], 1u64.to_json());
        assert_eq!(v["nested"]["flag"].as_bool(), Some(true));
        assert!(v["nothing"].is_null());
        assert_eq!(json!([]), Value::Array(vec![]));
        assert_eq!(json!({}), Value::Object(BTreeMap::new()));
        assert_eq!(json!(3.5), Value::Float(3.5));
    }

    #[test]
    fn pretty_printer_formats_and_reparses() {
        let v = json!({"a": [1, 2], "b": {"c": "d"}});
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"));
        assert_eq!(Value::parse(&pretty).unwrap(), v);
        assert_eq!(json!({}).to_string_pretty(), "{}");
    }

    #[test]
    fn struct_macro_round_trips() {
        #[derive(Debug, PartialEq)]
        struct Demo {
            name: String,
            n: u64,
            ratio: f64,
            tags: Vec<u32>,
            maybe: Option<i32>,
        }
        impl_json_struct!(Demo {
            name,
            n,
            ratio,
            tags,
            maybe
        });
        let d = Demo {
            name: "x".into(),
            n: u64::MAX,
            ratio: 0.25,
            tags: vec![1, 2],
            maybe: None,
        };
        let v = d.to_json();
        let text = v.to_string();
        let back = Demo::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);
        // A missing non-optional field fails to parse.
        assert!(Demo::from_json(&json!({"name": "x"})).is_none());
    }

    #[test]
    fn option_and_tuple_encoding_matches_serde_conventions() {
        assert_eq!(Some(5u32).to_json().to_string(), "5");
        assert_eq!(None::<u32>.to_json().to_string(), "null");
        assert_eq!((1u32, 2u8).to_json().to_string(), "[1,2]");
        let t: Option<Option<(u32, u8)>> = FromJson::from_json(&Value::parse("[7,8]").unwrap());
        assert_eq!(t, Some(Some((7u32, 8u8))));
        let n: Option<(u32, u8)> = Option::from_json(&Value::Null).unwrap();
        assert_eq!(n, None);
    }
}
