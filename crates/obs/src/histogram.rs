//! Log-linear HDR-style latency histogram.
//!
//! The hardware pattern behind this model: a line-rate latency monitor
//! cannot store per-packet samples, so it buckets each measurement into
//! a log-linear grid — a linear array of buckets per power-of-two tier —
//! and increments a counter. With 128 sub-buckets per tier the bucket
//! midpoint is never more than 1/128 ≈ 0.78 % away from the true value,
//! comfortably inside the ≤1 % relative-error budget, while the whole
//! grid for the full `u64` range fits in < 4 k counters (bounded
//! memory). Two histograms recorded on different modules merge by adding
//! bucket counts, which is exactly what the fleet collector does.

/// log2 of the number of linear sub-buckets per power-of-two tier.
const SUB_BUCKET_BITS: u32 = 7;
/// Linear sub-buckets per tier (values below this are recorded exactly).
const SUB_BUCKET_COUNT: u64 = 1 << SUB_BUCKET_BITS; // 128
/// Upper half of a tier's sub-buckets (the part each new tier adds).
const SUB_BUCKET_HALF: u64 = SUB_BUCKET_COUNT / 2; // 64

/// log2 of the fixed-point quantum for the running sum: sums are held
/// as integer multiples of 2^-20 ns (≈ 1 fs), so addition is exact,
/// associative, and commutative — a merge of per-shard histograms is
/// bit-identical to recording the same samples serially, which the
/// sharded-dataplane parity suite asserts down to the mean.
const SUM_QUANTUM_BITS: u32 = 20;

/// Quantize a nonnegative finite nanosecond sample to sum quanta.
fn quantize(v: f64) -> u128 {
    let scaled = (v * (1u64 << SUM_QUANTUM_BITS) as f64).round();
    if scaled >= u128::MAX as f64 {
        u128::MAX
    } else {
        scaled as u128
    }
}

/// A mergeable log-linear latency histogram over `u64` nanosecond
/// values with ≤1 % relative quantile error and bounded memory.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyHistogram {
    /// Bucket counts, grown on demand up to the highest recorded index
    /// (at most 3 776 entries for the full `u64` range).
    counts: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact sum of raw recorded values in fixed-point quanta of
    /// 2^-[`SUM_QUANTUM_BITS`] ns. Integer addition makes the mean
    /// independent of recording/merge order.
    sum_q: u128,
    /// Exact minimum recorded value.
    min: u64,
    /// Exact maximum recorded value.
    max: u64,
}

/// Bucket index for a value: identity below [`SUB_BUCKET_COUNT`], then
/// [`SUB_BUCKET_HALF`] buckets per power-of-two tier.
fn index_for(v: u64) -> usize {
    if v < SUB_BUCKET_COUNT {
        v as usize
    } else {
        // 2^h <= v < 2^(h+1), h >= SUB_BUCKET_BITS.
        let h = 63 - u64::from(v.leading_zeros());
        let shift = h - u64::from(SUB_BUCKET_BITS - 1);
        let sub = v >> shift; // in [SUB_BUCKET_HALF*2 .. SUB_BUCKET_COUNT*2) / 2
        (SUB_BUCKET_COUNT + (shift - 1) * SUB_BUCKET_HALF + (sub - SUB_BUCKET_HALF)) as usize
    }
}

/// Representative (midpoint) value of a bucket index — the inverse of
/// [`index_for`] up to the bucket's width.
fn value_for(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKET_COUNT {
        idx
    } else {
        let t = idx - SUB_BUCKET_COUNT;
        let shift = t / SUB_BUCKET_HALF + 1;
        let sub = t % SUB_BUCKET_HALF + SUB_BUCKET_HALF;
        let low = sub << shift;
        low + (1u64 << shift) / 2
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of the same sample.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = index_for(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum_q = self.sum_q.saturating_add(
            u128::from(v)
                .saturating_mul(u128::from(n))
                .saturating_mul(1u128 << SUM_QUANTUM_BITS),
        );
    }

    /// Record a floating-point nanosecond sample (rounded to the
    /// nearest integer bucket; the exact value still feeds the mean).
    pub fn record_f64(&mut self, v: f64) {
        let clamped = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let rounded = clamped.round().min(u64::MAX as f64) as u64;
        let idx = index_for(rounded);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = rounded;
            self.max = rounded;
        } else {
            self.min = self.min.min(rounded);
            self.max = self.max.max(rounded);
        }
        self.count += 1;
        self.sum_q = self.sum_q.saturating_add(quantize(clamped));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty), exact to the sum
    /// quantum and — because the underlying sum is an integer —
    /// identical no matter how the samples were split across
    /// histograms before merging.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Sum of recorded values in nanoseconds (quantized to
    /// 2^-20 ns on recording).
    pub fn sum(&self) -> f64 {
        self.sum_q as f64 / (1u64 << SUM_QUANTUM_BITS) as f64
    }

    /// The raw fixed-point sum in 2^-20 ns quanta — the
    /// order-independent integer behind [`sum`](Self::sum).
    pub fn sum_quanta(&self) -> u128 {
        self.sum_q
    }

    /// The value at quantile `q` (0..=1): the representative value of
    /// the bucket holding the `ceil(q·count)`-th smallest sample,
    /// clamped into the exact `[min, max]` range. Within 1 % relative
    /// error of the true sample quantile.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return value_for(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.value_at_quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// Merge another histogram into this one. Bucket counts add, so the
    /// result is identical to having recorded both sample streams into
    /// one histogram (mergeability is what lets the fleet collector
    /// aggregate per-module histograms without raw samples).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum_q = self.sum_q.saturating_add(other.sum_q);
    }

    /// Iterate non-empty buckets as `(representative_value, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (value_for(i), c))
    }

    /// Number of allocated buckets (memory-bound diagnostics).
    pub fn bucket_capacity(&self) -> usize {
        self.counts.len()
    }
}

// Hand-written (not `impl_json_struct!`) because the in-tree JSON
// `Value` has no 128-bit number: the fixed-point sum crosses the wire
// as two u64 halves.
impl crate::json::ToJson for LatencyHistogram {
    fn to_json(&self) -> crate::json::Value {
        let mut object = std::collections::BTreeMap::new();
        object.insert(
            String::from("counts"),
            crate::json::ToJson::to_json(&self.counts),
        );
        object.insert(
            String::from("count"),
            crate::json::ToJson::to_json(&self.count),
        );
        object.insert(
            String::from("sum_q_hi"),
            crate::json::ToJson::to_json(&((self.sum_q >> 64) as u64)),
        );
        object.insert(
            String::from("sum_q_lo"),
            crate::json::ToJson::to_json(&(self.sum_q as u64)),
        );
        object.insert(String::from("min"), crate::json::ToJson::to_json(&self.min));
        object.insert(String::from("max"), crate::json::ToJson::to_json(&self.max));
        crate::json::Value::Object(object)
    }
}

impl crate::json::FromJson for LatencyHistogram {
    fn from_json(v: &crate::json::Value) -> Option<Self> {
        let object = v.as_object()?;
        let field = |k: &str| object.get(k).unwrap_or(&crate::json::Value::Null);
        let hi: u64 = crate::json::FromJson::from_json(field("sum_q_hi"))?;
        let lo: u64 = crate::json::FromJson::from_json(field("sum_q_lo"))?;
        Some(LatencyHistogram {
            counts: crate::json::FromJson::from_json(field("counts"))?,
            count: crate::json::FromJson::from_json(field("count"))?,
            sum_q: (u128::from(hi) << 64) | u128::from(lo),
            min: crate::json::FromJson::from_json(field("min"))?,
            max: crate::json::FromJson::from_json(field("max"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 64, 127] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 127);
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), 127);
    }

    #[test]
    fn index_value_round_trip_error_bound() {
        // Every representable value's bucket midpoint is within 1 %.
        for shift in 0..57u32 {
            for sub in [64u64, 65, 100, 127] {
                let v = sub << (shift + 1);
                let idx = index_for(v);
                let rep = value_for(idx);
                let err = rep.abs_diff(v) as f64;
                assert!(err <= v as f64 * 0.01, "v={v} rep={rep} err={err}");
            }
        }
        // Linear region: exact.
        for v in 0..128u64 {
            assert_eq!(value_for(index_for(v)), v);
        }
    }

    #[test]
    fn indexes_are_contiguous_and_monotone() {
        // Bucket index is nondecreasing in the value, and every value
        // maps inside the bounded grid.
        let mut last = 0usize;
        for h in 7..63u32 {
            for v in [1u64 << h, (1u64 << h) + 1, (1u64 << (h + 1)) - 1] {
                let idx = index_for(v);
                assert!(idx >= last, "index regressed at {v}");
                assert!(idx < 3776, "index {idx} out of grid at {v}");
                last = idx;
            }
        }
        assert_eq!(index_for(127), 127);
        assert_eq!(index_for(128), 128);
        assert_eq!(index_for(255), 191);
        assert_eq!(index_for(256), 192);
    }

    #[test]
    fn quantiles_match_exact_within_bound() {
        let mut h = LatencyHistogram::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            // A deterministic heavy-tailed-ish sequence.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 40) % (1 + i * 37);
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let n = samples.len() as u64;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let target = ((q * n as f64).ceil() as u64).clamp(1, n);
            let exact = samples[(target - 1) as usize];
            let approx = h.value_at_quantile(q);
            let err = approx.abs_diff(exact) as f64;
            assert!(
                err <= exact as f64 * 0.01,
                "q={q} exact={exact} approx={approx}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in 0..5_000u64 {
            let x = v * v % 77_777;
            a.record(x);
            all.record(x);
        }
        for v in 0..3_000u64 {
            let x = v * 13 % 901;
            b.record(x);
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 8_000);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record_f64(100.5);
        h.record_f64(299.5);
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 200.0).abs() < 1e-9);
        assert_eq!(h.min(), 101); // f64::round is half-away-from-zero
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn bounded_memory_for_extreme_values() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert!(h.bucket_capacity() <= 3776, "{}", h.bucket_capacity());
        assert_eq!(h.max(), u64::MAX);
        // The p100 estimate stays within 1 % even at the top of range.
        let err = h.value_at_quantile(1.0).abs_diff(u64::MAX) as f64;
        assert!(err <= u64::MAX as f64 * 0.01);
    }

    #[test]
    fn mean_is_exact_under_any_merge_split() {
        // Fractional samples whose f64 running sum depends on the order
        // of addition — the fixed-point sum must not.
        let samples: Vec<f64> = (0..10_000)
            .map(|i| 0.1 + (i as f64) * 0.3 + 1e9 * f64::from(i % 7))
            .collect();
        let mut serial = LatencyHistogram::new();
        for &s in &samples {
            serial.record_f64(s);
        }
        // Round-robin the same samples across 8 shards and merge back.
        let mut shards = vec![LatencyHistogram::new(); 8];
        for (i, &s) in samples.iter().enumerate() {
            shards[i % 8].record_f64(s);
        }
        let mut merged = LatencyHistogram::new();
        for sh in &shards {
            merged.merge(sh);
        }
        assert_eq!(merged, serial);
        assert_eq!(merged.mean().to_bits(), serial.mean().to_bits());
        assert_eq!(merged.sum_quanta(), serial.sum_quanta());
    }

    #[test]
    fn histogram_round_trips_through_json() {
        use crate::json::{FromJson, ToJson};
        let mut h = LatencyHistogram::new();
        h.record_f64(123.456);
        h.record(u64::MAX); // pushes the fixed-point sum past 64 bits
        let back = LatencyHistogram::from_json(&h.to_json()).expect("round trip");
        assert_eq!(back, h);
        assert_eq!(back.sum_quanta(), h.sum_quanta());
    }

    #[test]
    fn negative_and_nan_samples_clamp_to_zero() {
        let mut h = LatencyHistogram::new();
        h.record_f64(-5.0);
        h.record_f64(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
