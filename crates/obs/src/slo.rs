//! SLO evaluation over windowed telemetry.
//!
//! An [`SloSpec`] states what "healthy" means — a p99.9 forwarding
//! latency bound, a ceiling on the unexplained-drop rate, a floor on
//! the microflow-cache hit rate — and [`evaluate`] checks every live
//! window of a [`WindowedSeries`] against it, producing an
//! [`SloReport`] that names each breach window and the value that
//! crossed its bound. Windowed evaluation is the point: a lifetime
//! p99.9 can look fine while one bad millisecond blows the budget.

use crate::timeseries::WindowedSeries;

/// What the dataplane must achieve, per window.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SloSpec {
    /// Per-window p99.9 forwarding latency must stay at or below this
    /// many nanoseconds.
    pub p999_latency_ns: u64,
    /// Per-window unexplained-drop rate (infrastructure drops over
    /// packets observed) must stay at or below this fraction.
    pub max_unexplained_drop_rate: f64,
    /// Per-window microflow-cache hit rate must stay at or above this
    /// fraction (windows with no lookups are exempt).
    pub min_cache_hit_rate: f64,
}

impl SloSpec {
    /// A deliberately generous spec a healthy module passes easily:
    /// p99.9 ≤ 100 µs, ≤ 1 % unexplained drops, ≥ 10 % cache hits.
    pub fn generous() -> SloSpec {
        SloSpec {
            p999_latency_ns: 100_000,
            max_unexplained_drop_rate: 0.01,
            min_cache_hit_rate: 0.10,
        }
    }
}

/// One window that violated one metric of the spec.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SloBreach {
    /// Start of the breaching window, nanoseconds.
    pub window_start_ns: u64,
    /// Which metric breached: "p999_latency_ns",
    /// "unexplained_drop_rate" or "cache_hit_rate".
    pub metric: String,
    /// The observed value.
    pub value: f64,
    /// The bound it violated.
    pub bound: f64,
}

/// The outcome of evaluating a spec over a series.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SloReport {
    /// True when no window breached any metric.
    pub healthy: bool,
    /// Non-empty windows examined.
    pub windows_evaluated: u64,
    /// Every breach found, in window order.
    pub breaches: Vec<SloBreach>,
}

crate::impl_json_struct!(SloSpec {
    p999_latency_ns,
    max_unexplained_drop_rate,
    min_cache_hit_rate
});
crate::impl_json_struct!(SloBreach {
    window_start_ns,
    metric,
    value,
    bound
});
crate::impl_json_struct!(SloReport {
    healthy,
    windows_evaluated,
    breaches
});

/// Check every non-empty live window of `series` against `spec`.
///
/// Latency is only checked for windows that forwarded packets, and the
/// cache floor only for windows that saw lookups — an idle window is
/// healthy, not vacuously in breach.
pub fn evaluate(spec: &SloSpec, series: &WindowedSeries) -> SloReport {
    let mut breaches = Vec::new();
    let mut evaluated = 0u64;
    for w in series.windows() {
        if w.is_empty() {
            continue;
        }
        evaluated += 1;
        if !w.latency.is_empty() {
            let p999 = w.latency.p999();
            if p999 > spec.p999_latency_ns {
                breaches.push(SloBreach {
                    window_start_ns: w.start_ns,
                    metric: "p999_latency_ns".into(),
                    value: p999 as f64,
                    bound: spec.p999_latency_ns as f64,
                });
            }
        }
        let drop_rate = w.unexplained_drop_rate();
        if drop_rate > spec.max_unexplained_drop_rate {
            breaches.push(SloBreach {
                window_start_ns: w.start_ns,
                metric: "unexplained_drop_rate".into(),
                value: drop_rate,
                bound: spec.max_unexplained_drop_rate,
            });
        }
        if let Some(hit_rate) = w.cache_hit_rate() {
            if hit_rate < spec.min_cache_hit_rate {
                breaches.push(SloBreach {
                    window_start_ns: w.start_ns,
                    metric: "cache_hit_rate".into(),
                    value: hit_rate,
                    bound: spec.min_cache_hit_rate,
                });
            }
        }
    }
    SloReport {
        healthy: breaches.is_empty(),
        windows_evaluated: evaluated,
        breaches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{FromJson, ToJson, Value};

    fn spec() -> SloSpec {
        SloSpec {
            p999_latency_ns: 1_000,
            max_unexplained_drop_rate: 0.1,
            min_cache_hit_rate: 0.5,
        }
    }

    #[test]
    fn healthy_series_reports_healthy() {
        let mut s = WindowedSeries::new(1_000, 8);
        for t in 0..100u64 {
            s.record_forwarded(t * 30, 500.0);
        }
        s.record_cache(0, 90, 10, 0, 90);
        let report = evaluate(&spec(), &s);
        assert!(report.healthy);
        assert!(report.breaches.is_empty());
        assert_eq!(report.windows_evaluated, 3);
    }

    #[test]
    fn latency_breach_names_the_window() {
        let mut s = WindowedSeries::new(1_000, 8);
        s.record_forwarded(100, 500.0);
        s.record_forwarded(2_500, 50_000.0); // the bad millisecond
        let report = evaluate(&spec(), &s);
        assert!(!report.healthy);
        assert_eq!(report.breaches.len(), 1);
        let b = &report.breaches[0];
        assert_eq!(b.window_start_ns, 2_000);
        assert_eq!(b.metric, "p999_latency_ns");
        assert!(b.value >= 50_000.0 * 0.99);
        assert_eq!(b.bound, 1_000.0);
    }

    #[test]
    fn drop_rate_breach_detected() {
        let mut s = WindowedSeries::new(1_000, 8);
        s.record_forwarded(10, 100.0);
        s.record_drop(20, true);
        let report = evaluate(&spec(), &s);
        assert!(!report.healthy);
        assert_eq!(report.breaches[0].metric, "unexplained_drop_rate");
        assert!((report.breaches[0].value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn app_drops_are_explained_and_pass() {
        let mut s = WindowedSeries::new(1_000, 8);
        s.record_forwarded(10, 100.0);
        for _ in 0..9 {
            s.record_drop(20, false);
        }
        assert!(evaluate(&spec(), &s).healthy);
    }

    #[test]
    fn cache_floor_exempts_windows_without_lookups() {
        let mut s = WindowedSeries::new(1_000, 8);
        s.record_forwarded(10, 100.0); // no lookups here
        s.record_cache(2_500, 1, 9, 0, 10); // 10% hit rate, floor is 50%
        let report = evaluate(&spec(), &s);
        assert_eq!(report.breaches.len(), 1);
        assert_eq!(report.breaches[0].metric, "cache_hit_rate");
        assert_eq!(report.breaches[0].window_start_ns, 2_000);
    }

    #[test]
    fn one_window_can_breach_multiple_metrics() {
        let mut s = WindowedSeries::new(1_000, 8);
        s.record_forwarded(10, 50_000.0);
        s.record_drop(20, true);
        s.record_cache(30, 0, 10, 0, 10);
        let report = evaluate(&spec(), &s);
        assert_eq!(report.breaches.len(), 3);
        assert_eq!(report.windows_evaluated, 1);
    }

    #[test]
    fn empty_series_is_healthy() {
        let report = evaluate(&spec(), &WindowedSeries::default());
        assert!(report.healthy);
        assert_eq!(report.windows_evaluated, 0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut s = WindowedSeries::new(1_000, 8);
        s.record_forwarded(10, 50_000.0);
        s.record_drop(20, true);
        let report = evaluate(&spec(), &s);
        let json = report.to_json().to_string();
        let back = SloReport::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn generous_spec_is_generous() {
        let g = SloSpec::generous();
        let mut s = WindowedSeries::new(1_000_000, 8);
        for t in 0..1_000u64 {
            s.record_forwarded(t * 900, 2_000.0);
        }
        s.record_cache(0, 900, 100, 0, 100);
        assert!(evaluate(&g, &s).healthy);
        let json = g.to_json().to_string();
        assert_eq!(
            SloSpec::from_json(&Value::parse(&json).unwrap()).unwrap(),
            g
        );
    }
}
