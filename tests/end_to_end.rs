//! Cross-crate integration tests: full modules under load, OTA
//! reprogramming between real applications, two-module fiber spans and
//! failure injection.

use flexsfp::apps::factory::app_factory;
use flexsfp::apps::{AclAction, AclFirewall, AclRule, StaticNat};
use flexsfp::core::bitstream::Bitstream;
use flexsfp::core::module::{FlexSfp, Interface, ModuleConfig, SimPacket};
use flexsfp::core::ShellKind;
use flexsfp::fabric::resources::ResourceManifest;
use flexsfp::host::{FiberLink, ManagementClient};
use flexsfp::ppe::Direction;
use flexsfp::traffic::{SizeModel, TraceBuilder};
use flexsfp::wire::ipv4::Ipv4Packet;
use flexsfp_core::auth::AuthKey;

fn to_sim(trace: Vec<flexsfp::traffic::TracePacket>, dir: Direction) -> Vec<SimPacket> {
    trace
        .into_iter()
        .map(|p| SimPacket {
            arrival_ns: p.arrival_ns,
            direction: dir,
            frame: p.frame,
        })
        .collect()
}

#[test]
fn nat_module_sustains_imix_line_rate_with_verified_translations() {
    let mut nat = StaticNat::new();
    for i in 0..128u32 {
        nat.add_mapping(0xc0a8_0000 + i, 0x6540_0000 + i).unwrap();
    }
    let mut module = FlexSfp::new(ModuleConfig::default(), Box::new(nat));
    let trace = TraceBuilder::new(77)
        .flows(128)
        .sizes(SizeModel::Imix)
        .arrivals(flexsfp::traffic::gen::ArrivalModel::Paced { utilization: 1.0 })
        .build(10_000);
    let report = module.run(to_sim(trace, Direction::EdgeToOptical));
    assert_eq!(report.offered, 10_000);
    assert_eq!(report.drops.total(), 0, "{:?}", report.drops);
    assert_eq!(report.forwarded.1, 10_000);
    // Every output is translated into the public block with valid sums.
    for out in &report.outputs {
        let ip = Ipv4Packet::new_checked(&out.frame[14..]).unwrap();
        assert!((0x6540_0000..0x6540_0080).contains(&ip.src()));
        assert!(ip.verify_checksum());
    }
    // Sub-2µs worst case even at IMIX sizes.
    assert!(
        report.latency.max_ns() < 2_000.0,
        "{}",
        report.latency.max_ns()
    );
}

#[test]
fn ota_swap_from_nat_to_firewall_changes_behaviour() {
    let mut nat = StaticNat::new();
    nat.add_mapping(0xc0a80001, 0x65000001).unwrap();
    let mut module = FlexSfp::new(ModuleConfig::default(), Box::new(nat));
    module.set_factory(app_factory());
    let client = ManagementClient::new(AuthKey::DEFAULT);

    let frame = || {
        flexsfp::wire::builder::PacketBuilder::eth_ipv4_udp(
            flexsfp::wire::MacAddr([2; 6]),
            flexsfp::wire::MacAddr([4; 6]),
            0xc0a80001,
            0x08080808,
            999,
            53,
            b"q",
        )
    };

    // Phase 1: NAT translates.
    let r = module.run(vec![SimPacket {
        arrival_ns: 0,
        direction: Direction::EdgeToOptical,
        frame: frame(),
    }]);
    let ip = Ipv4Packet::new_checked(&r.outputs[0].frame[14..]).unwrap();
    assert_eq!(ip.src(), 0x65000001);

    // Phase 2: deploy a default-deny firewall bitstream over the OOB
    // port and activate it.
    let fw_bs = Bitstream::new(
        "firewall",
        2,
        ResourceManifest::new(8_000, 6_000, 24, 2),
        156_250_000,
    )
    .with_config(flexsfp_obs::json!({"default": "deny", "capacity": 16}));
    client.deploy(&mut module, 1, &fw_bs.to_bytes()).unwrap();
    assert_eq!(module.app_name(), "firewall");
    assert_eq!(module.boots(), 2);

    // Phase 3: the same packet is now dropped.
    let r = module.run(vec![SimPacket {
        arrival_ns: 0,
        direction: Direction::EdgeToOptical,
        frame: frame(),
    }]);
    assert_eq!(r.drops.app, 1);
    assert_eq!(r.forwarded.1, 0);

    // Phase 4: install a permit rule at runtime; traffic flows again.
    let rule = AclRule {
        src: None,
        dst: None,
        protocol: Some(17),
        src_port: None,
        dst_port: Some(53),
        priority: 1,
        action: AclAction::Permit,
    };
    client
        .table_op(
            &mut module,
            flexsfp::core::control::CtlTableOp::Insert {
                table: 0,
                key: vec![],
                value: flexsfp_obs::ToJson::to_json(&rule).to_string().into_bytes(),
            },
        )
        .unwrap();
    let r = module.run(vec![SimPacket {
        arrival_ns: 0,
        direction: Direction::EdgeToOptical,
        frame: frame(),
    }]);
    assert_eq!(r.forwarded.1, 1);
}

#[test]
fn two_modules_over_fiber_with_firewall_at_far_end() {
    // A passthrough module feeds a fiber; the far module firewalls
    // what arrives from the wire.
    let mut near = FlexSfp::passthrough();
    let mut fw = AclFirewall::new(8);
    fw.add_rule(AclRule {
        src: None,
        dst: None,
        protocol: Some(17),
        src_port: None,
        dst_port: Some(4444),
        priority: 1,
        action: AclAction::Deny,
    });
    let mut far = FlexSfp::new(
        ModuleConfig {
            shell: ShellKind::OneWayFilter {
                ppe_direction: Direction::OpticalToEdge,
            },
            ..ModuleConfig::default()
        },
        Box::new(fw),
    );
    let mk = |dport: u16| {
        flexsfp::wire::builder::PacketBuilder::eth_ipv4_udp(
            flexsfp::wire::MacAddr([2; 6]),
            flexsfp::wire::MacAddr([4; 6]),
            0xc0a80001,
            0x0a000001,
            999,
            dport,
            b"x",
        )
    };
    let report_near = near.run(vec![
        SimPacket {
            arrival_ns: 0,
            direction: Direction::EdgeToOptical,
            frame: mk(4444),
        },
        SimPacket {
            arrival_ns: 1000,
            direction: Direction::EdgeToOptical,
            frame: mk(80),
        },
    ]);
    assert_eq!(report_near.forwarded.1, 2);
    let link = FiberLink::new(500.0);
    let report_far = far.run(link.carry(&report_near.outputs));
    // Port 4444 died at the far cage; port 80 made it to the host.
    assert_eq!(report_far.drops.app, 1);
    assert_eq!(report_far.forwarded.0, 1);
    assert_eq!(report_far.outputs[0].egress, Interface::Edge);
    // Fiber delay visible in arrival times.
    assert!(report_far.outputs[0].departure_ns > 2_450);
}

#[test]
fn degraded_laser_kills_long_span_but_not_short() {
    let mut module = FlexSfp::passthrough();
    module.set_laser_ttf_hours(100_000.0);
    module.age_laser(85_000.0); // ≈ 2.2 dB down
    let frame = flexsfp::wire::builder::PacketBuilder::eth_ipv4_udp(
        flexsfp::wire::MacAddr([2; 6]),
        flexsfp::wire::MacAddr([4; 6]),
        1,
        2,
        3,
        4,
        b"x",
    );
    // The optical egress link-budget check uses 3 dB of span loss:
    // -2 dBm - 2.17 dB - 3 dB = -7.2 dBm, still above -11.1 dBm.
    let r = module.run(vec![SimPacket {
        arrival_ns: 0,
        direction: Direction::EdgeToOptical,
        frame: frame.clone(),
    }]);
    assert_eq!(r.forwarded.1, 1);
    // Age to failure: now even the 3 dB span is dark.
    module.age_laser(60_000.0);
    let r = module.run(vec![SimPacket {
        arrival_ns: 0,
        direction: Direction::EdgeToOptical,
        frame,
    }]);
    assert_eq!(r.drops.link, 1);
    // And the DOM shows why — the targeted-repair story.
    let dom = module.mgmt.read_dom();
    let diag = flexsfp_core::failure::diagnose(
        &dom,
        &module.vcsel,
        &flexsfp_core::failure::DiagnosisThresholds::default(),
    );
    assert_eq!(diag, flexsfp_core::failure::FaultDiagnosis::LaserFailed);
}

#[test]
fn control_traffic_and_data_traffic_coexist() {
    // Interleave line-rate data with control pings; both must work.
    let mut module = FlexSfp::passthrough();
    let mgmt_mac = module.config.mgmt_mac;
    let mgmt_ip = module.config.mgmt_ip;
    let data = TraceBuilder::new(3)
        .sizes(SizeModel::Fixed(60))
        .arrivals(flexsfp::traffic::gen::ArrivalModel::Paced { utilization: 0.95 })
        .build(2_000);
    let mut packets = to_sim(data, Direction::EdgeToOptical);
    for k in 0..20u64 {
        let payload = flexsfp::core::ControlPlane::encode_request(
            &AuthKey::DEFAULT,
            &flexsfp::core::ControlRequest::Ping { nonce: k },
        );
        packets.push(SimPacket {
            arrival_ns: k * 5_000,
            direction: Direction::EdgeToOptical,
            frame: flexsfp::wire::builder::PacketBuilder::eth_ipv4_udp(
                mgmt_mac,
                flexsfp::wire::MacAddr([0xee; 6]),
                0x0a000101,
                mgmt_ip,
                40_000,
                flexsfp::core::control::CONTROL_PORT,
                &payload,
            ),
        });
    }
    packets.sort_by_key(|p| p.arrival_ns);
    let report = module.run(packets);
    assert_eq!(report.control_handled, 20);
    assert_eq!(report.forwarded.1, 2_000);
    assert_eq!(report.drops.total(), 0);
    // Control responses came back out the edge.
    assert_eq!(report.forwarded.0, 0);
    let responses = report
        .outputs
        .iter()
        .filter(|o| o.egress == Interface::Edge)
        .count();
    assert_eq!(responses, 20);
}

#[test]
fn reflect_verdict_hairpins() {
    struct Reflector;
    impl flexsfp::ppe::PacketProcessor for Reflector {
        fn name(&self) -> &str {
            "reflector"
        }
        fn process(
            &mut self,
            _ctx: &flexsfp::ppe::ProcessContext,
            _packet: &mut Vec<u8>,
        ) -> flexsfp::ppe::Verdict {
            flexsfp::ppe::Verdict::Reflect
        }
    }
    let mut module = FlexSfp::new(ModuleConfig::two_way_2x(), Box::new(Reflector));
    let frame = flexsfp::wire::builder::PacketBuilder::eth_ipv4_udp(
        flexsfp::wire::MacAddr([2; 6]),
        flexsfp::wire::MacAddr([4; 6]),
        1,
        2,
        3,
        4,
        b"ping",
    );
    let r = module.run(vec![SimPacket {
        arrival_ns: 0,
        direction: Direction::EdgeToOptical,
        frame,
    }]);
    // The packet came back out the edge instead of the optical side.
    assert_eq!(r.forwarded.0, 1);
    assert_eq!(r.forwarded.1, 0);
}
