#![cfg(feature = "proptest")]
// Needs the proptest dev-dependency; see "Building" in the README.
//! Cross-crate property tests: invariants that must hold for arbitrary
//! generated workloads and configurations.

use flexsfp::apps::{Sanitizer, StaticNat};
use flexsfp::core::module::{FlexSfp, ModuleConfig, SimPacket};
use flexsfp::ppe::{Direction, PacketProcessor, ProcessContext, Verdict};
use flexsfp::traffic::{SizeModel, TraceBuilder};
use flexsfp::wire::ipv4::Ipv4Packet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A passthrough module forwards every frame of any seeded trace
    /// unmodified, in order, with conserved byte counts.
    #[test]
    fn passthrough_module_conserves_frames(
        seed in any::<u64>(),
        n in 50usize..300,
        util in 0.05f64..1.0,
    ) {
        let trace = TraceBuilder::new(seed)
            .sizes(SizeModel::Imix)
            .arrivals(flexsfp::traffic::gen::ArrivalModel::Paced { utilization: util })
            .build(n);
        let frames: Vec<Vec<u8>> = trace.iter().map(|p| p.frame.clone()).collect();
        let offered_bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();
        let mut module = FlexSfp::passthrough();
        let report = module.run(
            trace
                .into_iter()
                .map(|p| SimPacket {
                    arrival_ns: p.arrival_ns,
                    direction: Direction::EdgeToOptical,
                    frame: p.frame,
                })
                .collect(),
        );
        prop_assert_eq!(report.forwarded.1 as usize, n);
        prop_assert_eq!(report.forwarded_bytes, offered_bytes);
        prop_assert_eq!(report.drops.total(), 0);
        for (out, sent) in report.outputs.iter().zip(&frames) {
            prop_assert_eq!(&out.frame, sent);
        }
        // Latency is always positive and finite.
        prop_assert!(report.latency.min_ns() > 0.0);
        prop_assert!(report.latency.max_ns().is_finite());
        prop_assert!(report.latency.p99_ns() <= report.latency.max_ns());
    }

    /// NAT translation: for arbitrary mappings, the translated packet
    /// carries the mapped source, valid checksums, and identical
    /// payload bytes; unmapped sources pass untouched.
    #[test]
    fn nat_translation_invariants(
        private in 1u32..0xfffffffe,
        public in 1u32..0xfffffffe,
        other in 1u32..0xfffffffe,
        sport in 1u16..65535,
        dport in 1u16..65535,
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        prop_assume!(private != other);
        let mut nat = StaticNat::new();
        nat.add_mapping(private, public).unwrap();
        let build = |src: u32| {
            flexsfp::wire::builder::PacketBuilder::eth_ipv4_udp(
                flexsfp::wire::MacAddr([2; 6]),
                flexsfp::wire::MacAddr([4; 6]),
                src,
                0x08080808,
                sport,
                dport,
                &payload,
            )
        };
        let mut mapped = build(private);
        prop_assert_eq!(nat.process(&ProcessContext::egress(), &mut mapped), Verdict::Forward);
        let ip = Ipv4Packet::new_checked(&mapped[14..]).unwrap();
        prop_assert_eq!(ip.src(), public);
        prop_assert!(ip.verify_checksum());
        let udp = flexsfp::wire::UdpDatagram::new_checked(ip.payload()).unwrap();
        prop_assert!(udp.verify_checksum_v4(public, 0x08080808));
        prop_assert_eq!(udp.payload(), &payload[..]);

        let mut unmapped = build(other);
        let before = unmapped.clone();
        nat.process(&ProcessContext::egress(), &mut unmapped);
        prop_assert_eq!(unmapped, before);
    }

    /// The sanitizer never modifies packets it forwards, and its
    /// counters exactly partition the offered packets.
    #[test]
    fn sanitizer_partitions_traffic(
        seed in any::<u64>(),
        n in 20usize..150,
    ) {
        let trace = TraceBuilder::new(seed).build(n);
        let mut s = Sanitizer::default();
        let mut forwarded = 0u64;
        for p in &trace {
            let mut f = p.frame.clone();
            let before = f.clone();
            match s.process(&ProcessContext::egress(), &mut f) {
                Verdict::Forward => {
                    forwarded += 1;
                    prop_assert_eq!(f, before);
                }
                Verdict::Drop => {}
                other => prop_assert!(false, "unexpected verdict {:?}", other),
            }
        }
        prop_assert_eq!(s.stats.passed, forwarded);
        prop_assert_eq!(s.stats.passed + s.stats.dropped(), n as u64);
    }

    /// Module outputs are always sorted by departure time, for any
    /// shell and load.
    #[test]
    fn outputs_sorted_by_departure(
        seed in any::<u64>(),
        two_way in any::<bool>(),
        util in 0.3f64..1.0,
    ) {
        let cfg = if two_way {
            ModuleConfig::two_way_2x()
        } else {
            ModuleConfig::default()
        };
        let mut module = FlexSfp::new(cfg, Box::new(flexsfp::ppe::engine::PassThrough));
        let trace = TraceBuilder::new(seed)
            .sizes(SizeModel::Fixed(60))
            .arrivals(flexsfp::traffic::gen::ArrivalModel::Poisson { utilization: util })
            .build(200);
        let mut packets = Vec::new();
        for (i, p) in trace.into_iter().enumerate() {
            packets.push(SimPacket {
                arrival_ns: p.arrival_ns,
                direction: if i % 2 == 0 {
                    Direction::EdgeToOptical
                } else {
                    Direction::OpticalToEdge
                },
                frame: p.frame,
            });
        }
        let report = module.run(packets);
        for w in report.outputs.windows(2) {
            prop_assert!(w[0].departure_ns <= w[1].departure_ns);
        }
    }
}
