//! Integration smoke of the experiment harness: every paper artifact
//! regenerates, and the headline qualitative results hold together.

use flexsfp_bench::{ablations, fig1, fig2, linerate, power, scaling, table1, table2, table3};

#[test]
fn every_experiment_runs_and_serializes() {
    let t1 = table1::run();
    assert!(flexsfp_obs::ToJson::to_json(&t1)
        .to_string()
        .contains("31455"));
    let t2 = table2::run();
    assert!(flexsfp_obs::ToJson::to_json(&t2)
        .to_string()
        .contains("Pigasus"));
    let t3 = table3::run();
    assert!(flexsfp_obs::ToJson::to_json(&t3)
        .to_string()
        .contains("FlexSFP"));
    let f1 = fig1::run(1_000);
    assert_eq!(f1.points.len(), 5);
    let f2 = fig2::run();
    assert!(f2.all_ok);
    let lr = linerate::run(1_000);
    assert!(lr.line_rate_confirmed);
    let pw = power::run();
    assert!(pw.flexsfp_w > pw.sfp_w);
    let sc = scaling::run();
    assert_eq!(sc.points.len(), 8);
    let ab = ablations::run(1_000);
    assert_eq!(ab.chain_depth.len(), 6);
}

#[test]
fn paper_narrative_holds_end_to_end() {
    // The paper's overall argument, checked across experiments:
    // 1. The NAT design fits the MPF200T with ample headroom (Table 1)…
    let t1 = table1::run();
    assert!(t1.fits);
    let (lut, _, _, lsram) = t1.utilization_pct;
    assert!(lut < 30 && lsram < 40);

    // 2. …which is plausible because a same-order published design
    //    (hXDP) also fits, while heavyweight NFs do not (Table 2).
    let t2 = table2::run();
    let fitting = t2.designs.iter().filter(|d| d.fits()).count();
    assert_eq!(fitting, 1);

    // 3. The module draws ~1.5 W where SmartNICs draw 5–15 W per 10 G
    //    slice (Table 3 + §5 power).
    let pw = power::run();
    assert!(pw.flexsfp_w < 2.0);
    let t3 = table3::run();
    let flex_w = t3.rows.last().unwrap().power_per_10g.max;
    assert!(t3.rows[0].power_per_10g.min / flex_w >= 10.0);

    // 4. It sustains 10 G line rate in the prototype configuration
    //    (§5.1)…
    let lr = linerate::run(2_000);
    assert!(lr.line_rate_confirmed);

    // 5. …and scaling to 100 G requires a wider datapath that busts the
    //    SFP+ power envelope — hence QSFP/OSFP form factors (§5.3).
    let sc = scaling::run();
    let hundred = sc
        .points
        .iter()
        .find(|p| p.max_line_rate_gbps >= 100)
        .expect("a 100G point exists");
    assert_eq!(hundred.width_bits, 512);
    assert!(hundred.power_w > 2.5);
}
