//! # FlexSFP — Rethinking Network Intelligence Inside the Cable
//!
//! Umbrella crate for the FlexSFP reproduction. Re-exports every subsystem
//! crate under a short alias so downstream users can depend on a single
//! crate:
//!
//! ```
//! use flexsfp::wire::EthernetFrame;
//! use flexsfp::core::FlexSfp;
//! ```
//!
//! See `DESIGN.md` at the repository root for the system inventory and
//! `EXPERIMENTS.md` for the paper-reproduction index.

pub use flexsfp_apps as apps;
pub use flexsfp_core as core;
pub use flexsfp_cost as cost;
pub use flexsfp_fabric as fabric;
pub use flexsfp_host as host;
pub use flexsfp_obs as obs;
pub use flexsfp_ppe as ppe;
pub use flexsfp_traffic as traffic;
pub use flexsfp_wire as wire;
